package server_test

import (
	"context"
	"testing"
	"time"

	"absolver/internal/server"
	"absolver/internal/server/api"
)

// Variants of satDIMACS that are canonically the same problem: the clause
// literals are permuted, a clause is repeated, and binding whitespace
// differs. The verdict cache must treat them as one identity.
const (
	satDIMACSPermuted = "p cnf 2 1\n2 1 0\nc def real 1 x >= 1\n"
	satDIMACSRepeated = "p cnf 2 2\n1 2 0\n1 2 0\nc def real 1   x >= 1\n"
)

func cacheCounters(t *testing.T, c interface {
	Metrics(context.Context) (map[string]float64, error)
}) (hits, misses, satSolves float64) {
	t.Helper()
	m, err := c.Metrics(context.Background())
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	return m["absolverd_cache_hits_total"], m["absolverd_cache_misses_total"],
		m[`absolverd_solves_total{verdict="sat"}`]
}

func TestCacheHitOnCanonicallyIdenticalProblems(t *testing.T) {
	_, c := newTestServer(t, server.Config{Workers: 1, QueueDepth: 2})
	ctx := context.Background()

	first, err := c.Solve(ctx, satDIMACS, api.SolveParams{})
	if err != nil || first.Status != "sat" {
		t.Fatalf("first: %v %+v", err, first)
	}
	for _, variant := range []string{satDIMACS, satDIMACSPermuted, satDIMACSRepeated} {
		resp, err := c.Solve(ctx, variant, api.SolveParams{})
		if err != nil || resp.Status != "sat" {
			t.Fatalf("variant %q: %v %+v", variant, err, resp)
		}
		// A cached answer replays the original response verbatim.
		if resp.Stats.Iterations != first.Stats.Iterations {
			t.Fatalf("variant %q got fresh stats %+v, want cached %+v", variant, resp.Stats, first.Stats)
		}
	}
	hits, misses, sat := cacheCounters(t, c)
	if hits != 3 || misses != 1 || sat != 1 {
		t.Fatalf("hits=%g misses=%g sat_solves=%g, want 3/1/1", hits, misses, sat)
	}
}

func TestCacheDistinguishesDistinctProblems(t *testing.T) {
	_, c := newTestServer(t, server.Config{Workers: 1, QueueDepth: 2})
	ctx := context.Background()
	if _, err := c.Solve(ctx, satDIMACS, api.SolveParams{}); err != nil {
		t.Fatal(err)
	}
	// Same clause skeleton, different bound: a different canonical identity.
	resp, err := c.Solve(ctx, "p cnf 2 1\n1 2 0\nc def real 1 x >= 2\n", api.SolveParams{})
	if err != nil || resp.Status != "sat" {
		t.Fatalf("distinct: %v %+v", err, resp)
	}
	hits, misses, _ := cacheCounters(t, c)
	if hits != 0 || misses != 2 {
		t.Fatalf("hits=%g misses=%g, want 0/2", hits, misses)
	}
}

func TestCacheBypassWithNoCache(t *testing.T) {
	_, c := newTestServer(t, server.Config{Workers: 1, QueueDepth: 2})
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		resp, err := c.Solve(ctx, satDIMACS, api.SolveParams{NoCache: true})
		if err != nil || resp.Status != "sat" {
			t.Fatalf("solve %d: %v %+v", i, err, resp)
		}
	}
	hits, misses, sat := cacheCounters(t, c)
	// no_cache requests never touch the cache in either direction.
	if hits != 0 || misses != 0 || sat != 2 {
		t.Fatalf("hits=%g misses=%g sat_solves=%g, want 0/0/2", hits, misses, sat)
	}
	// ...and they must not have seeded the cache for later requests.
	if _, err := c.Solve(ctx, satDIMACS, api.SolveParams{}); err != nil {
		t.Fatal(err)
	}
	if hits, misses, _ := cacheCounters(t, c); hits != 0 || misses != 1 {
		t.Fatalf("post-bypass hits=%g misses=%g, want 0/1", hits, misses)
	}
}

func TestCacheDisabled(t *testing.T) {
	_, c := newTestServer(t, server.Config{Workers: 1, QueueDepth: 2, CacheSize: -1})
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if _, err := c.Solve(ctx, satDIMACS, api.SolveParams{}); err != nil {
			t.Fatal(err)
		}
	}
	hits, misses, sat := cacheCounters(t, c)
	if hits != 0 || misses != 0 || sat != 2 {
		t.Fatalf("hits=%g misses=%g sat_solves=%g, want 0/0/2 with the cache disabled", hits, misses, sat)
	}
}

func TestCacheHitRecertifiesUnderCheckModels(t *testing.T) {
	_, c := newTestServer(t, server.Config{Workers: 1, QueueDepth: 2})
	ctx := context.Background()
	first, err := c.Solve(ctx, satDIMACS, api.SolveParams{CheckModels: true})
	if err != nil || first.Status != "sat" || first.Model == nil {
		t.Fatalf("first: %v %+v", err, first)
	}
	// The hit passes through CertifyModel against the incoming problem and
	// serves the cached witness.
	second, err := c.Solve(ctx, satDIMACSPermuted, api.SolveParams{CheckModels: true})
	if err != nil || second.Status != "sat" || second.Model == nil {
		t.Fatalf("second: %v %+v", err, second)
	}
	if second.Model.Real["x"] != first.Model.Real["x"] {
		t.Fatalf("hit did not replay the cached witness: %+v vs %+v", second.Model, first.Model)
	}
	hits, _, sat := cacheCounters(t, c)
	if hits != 1 || sat != 1 {
		t.Fatalf("hits=%g sat_solves=%g, want 1/1", hits, sat)
	}
	// A cached unsat verdict needs no certificate and is served as-is.
	if _, err := c.Solve(ctx, unsatDIMACS, api.SolveParams{}); err != nil {
		t.Fatal(err)
	}
	resp, err := c.Solve(ctx, unsatDIMACS, api.SolveParams{CheckModels: true})
	if err != nil || resp.Status != "unsat" {
		t.Fatalf("cached unsat under check_models: %v %+v", err, resp)
	}
}

func TestCacheNeverStoresUnknown(t *testing.T) {
	// An unknown produced by a stingy deadline must not poison a later
	// request for the same problem under a laxer deadline: unknown is
	// budget-relative and never enters the cache.
	_, c := newTestServer(t, server.Config{
		Workers: 1, QueueDepth: 2,
		SolveDelay: 200 * time.Millisecond,
	})
	ctx := context.Background()
	resp, err := c.Solve(ctx, satDIMACS, api.SolveParams{Timeout: 30 * time.Millisecond})
	if err != nil || resp.Status != "unknown" {
		t.Fatalf("deadline solve: %v %+v", err, resp)
	}
	resp, err = c.Solve(ctx, satDIMACS, api.SolveParams{})
	if err != nil || resp.Status != "sat" {
		t.Fatalf("lax retry: %v %+v, want a real sat solve", err, resp)
	}
	hits, misses, _ := cacheCounters(t, c)
	if hits != 0 || misses != 2 {
		t.Fatalf("hits=%g misses=%g, want 0/2: unknown must not be cached", hits, misses)
	}
}
