// Package api defines the wire types of the absolverd HTTP service — the
// solve request parameters, the JSON response and stream-event envelopes,
// and the stable HTTP↔exit-code mapping — shared by the server and the Go
// client so neither depends on the other's internals.
package api

import (
	"fmt"
	"net/url"
	"strconv"
	"time"

	"absolver/internal/core"
)

// Problem body formats accepted by POST /v1/solve.
const (
	// FormatDIMACS is ABsolver's extended DIMACS input language (default).
	FormatDIMACS = "dimacs"
	// FormatSMTLIB is the SMT-LIB 1.2 benchmark subset.
	FormatSMTLIB = "smtlib"
)

// SolveParams are the engine knobs of one solve request. On the wire they
// travel as query parameters of POST /v1/solve (the body carries the
// problem text); Values/ParseParams convert both ways.
type SolveParams struct {
	// Format is the problem body's language: FormatDIMACS (default) or
	// FormatSMTLIB.
	Format string
	// Portfolio races N differently-configured engines; 0 = single engine.
	Portfolio int
	// NoShare disables cross-engine lemma sharing in a portfolio race.
	NoShare bool
	// Restart re-creates the Boolean solver per iteration.
	Restart bool
	// NoIIS disables smallest-conflicting-subset refinement.
	NoIIS bool
	// NoLemmas disables static theory-lemma grounding.
	NoLemmas bool
	// NoCache disables the theory-verdict cache.
	NoCache bool
	// NoPolyAR disables the PolyAR abstraction-refinement fallback for
	// nonlinear checks the penalty solver leaves undecided.
	NoPolyAR bool
	// CheckModels independently re-certifies every SAT model.
	CheckModels bool
	// Timeout bounds queue wait + solve for this request; 0 selects the
	// server's default, values above the server's maximum are clamped.
	Timeout time.Duration
	// Stream requests NDJSON trace streaming instead of a single JSON
	// response.
	Stream bool
	// ExchangeURL, when set, attaches the solve's engine to a remote lemma
	// relay at that URL (cluster workers sharing theory lemmas across
	// cubes). Servers only honour it when configured to allow outbound
	// exchange connections; others reject the request.
	ExchangeURL string
	// ExchangeNode names this engine on the relay; it scopes the import
	// cursor and owner-skip, so every concurrently attached engine needs a
	// distinct name. Ignored without ExchangeURL.
	ExchangeNode string
}

// Values renders the parameters as URL query values (zero fields are
// omitted).
func (p SolveParams) Values() url.Values {
	v := url.Values{}
	if p.Format != "" && p.Format != FormatDIMACS {
		v.Set("format", p.Format)
	}
	if p.Portfolio > 0 {
		v.Set("portfolio", strconv.Itoa(p.Portfolio))
	}
	setBool := func(key string, b bool) {
		if b {
			v.Set(key, "true")
		}
	}
	setBool("no_share", p.NoShare)
	setBool("restart", p.Restart)
	setBool("no_iis", p.NoIIS)
	setBool("no_lemmas", p.NoLemmas)
	setBool("no_cache", p.NoCache)
	setBool("no_polyar", p.NoPolyAR)
	setBool("check_models", p.CheckModels)
	setBool("stream", p.Stream)
	if p.Timeout > 0 {
		v.Set("timeout", p.Timeout.String())
	}
	if p.ExchangeURL != "" {
		v.Set("exchange_url", p.ExchangeURL)
		if p.ExchangeNode != "" {
			v.Set("exchange_node", p.ExchangeNode)
		}
	}
	return v
}

// ParseParams reads solve parameters from URL query values, rejecting
// unknown formats and malformed numbers/durations/booleans.
func ParseParams(v url.Values) (SolveParams, error) {
	var p SolveParams
	p.Format = v.Get("format")
	switch p.Format {
	case "":
		p.Format = FormatDIMACS
	case FormatDIMACS, FormatSMTLIB:
	default:
		return p, fmt.Errorf("unknown format %q (want %q or %q)", p.Format, FormatDIMACS, FormatSMTLIB)
	}
	if s := v.Get("portfolio"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 0 {
			return p, fmt.Errorf("bad portfolio %q: want a non-negative integer", s)
		}
		p.Portfolio = n
	}
	getBool := func(key string, dst *bool) error {
		s := v.Get(key)
		if s == "" {
			if _, present := v[key]; present {
				// Bare "?restart" (no value) means true.
				*dst = true
			}
			return nil
		}
		b, err := strconv.ParseBool(s)
		if err != nil {
			return fmt.Errorf("bad %s %q: want a boolean", key, s)
		}
		*dst = b
		return nil
	}
	for key, dst := range map[string]*bool{
		"no_share": &p.NoShare, "restart": &p.Restart, "no_iis": &p.NoIIS,
		"no_lemmas": &p.NoLemmas, "no_cache": &p.NoCache,
		"no_polyar":    &p.NoPolyAR,
		"check_models": &p.CheckModels, "stream": &p.Stream,
	} {
		if err := getBool(key, dst); err != nil {
			return p, err
		}
	}
	if s := v.Get("timeout"); s != "" {
		d, err := time.ParseDuration(s)
		if err != nil || d < 0 {
			return p, fmt.Errorf("bad timeout %q: want a Go duration", s)
		}
		p.Timeout = d
	}
	p.ExchangeURL = v.Get("exchange_url")
	p.ExchangeNode = v.Get("exchange_node")
	if p.ExchangeNode != "" && p.ExchangeURL == "" {
		return p, fmt.Errorf("exchange_node without exchange_url")
	}
	return p, nil
}

// Stats is the JSON rendering of core.Stats (wall-clock fields in
// milliseconds).
type Stats struct {
	Iterations        int     `json:"iterations"`
	LinearChecks      int     `json:"linear_checks"`
	NonlinearChecks   int     `json:"nonlinear_checks"`
	ConflictClauses   int     `json:"conflict_clauses"`
	LossyBlocks       int     `json:"lossy_blocks"`
	NESplits          int     `json:"ne_splits"`
	LemmasPublished   int     `json:"lemmas_published"`
	LemmasImported    int     `json:"lemmas_imported"`
	LemmasDeduped     int     `json:"lemmas_deduped"`
	TheoryCacheHits   int     `json:"theory_cache_hits"`
	TheoryCacheMisses int     `json:"theory_cache_misses"`
	SessionSolves     int     `json:"session_solves,omitempty"`
	NLPUnknown        int     `json:"nlp_unknown,omitempty"`
	NLPUnknownRescued int     `json:"nlp_unknown_rescued,omitempty"`
	PolyARRegions     int     `json:"polyar_regions,omitempty"`
	PolyARPruned      int     `json:"polyar_pruned,omitempty"`
	PolyARWitnesses   int     `json:"polyar_witnesses,omitempty"`
	BoolMS            float64 `json:"bool_ms"`
	LinearMS          float64 `json:"linear_ms"`
	NonlinearMS       float64 `json:"nonlinear_ms"`
	WallMS            float64 `json:"wall_ms"`
}

// StatsFrom converts engine statistics to the wire form.
func StatsFrom(s core.Stats) Stats {
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	return Stats{
		Iterations:        s.Iterations,
		LinearChecks:      s.LinearChecks,
		NonlinearChecks:   s.NonlinearChecks,
		ConflictClauses:   s.ConflictClauses,
		LossyBlocks:       s.LossyBlocks,
		NESplits:          s.NESplits,
		LemmasPublished:   s.LemmasPublished,
		LemmasImported:    s.LemmasImported,
		LemmasDeduped:     s.LemmasDeduped,
		TheoryCacheHits:   s.TheoryCacheHits,
		TheoryCacheMisses: s.TheoryCacheMisses,
		SessionSolves:     s.SessionSolves,
		NLPUnknown:        s.NLPUnknown,
		NLPUnknownRescued: s.NLPUnknownRescued,
		PolyARRegions:     s.PolyARRegions,
		PolyARPruned:      s.PolyARPruned,
		PolyARWitnesses:   s.PolyARWitnesses,
		BoolMS:            ms(s.BoolTime),
		LinearMS:          ms(s.LinearTime),
		NonlinearMS:       ms(s.NonlinearTime),
		WallMS:            ms(s.WallTime),
	}
}

// ToCore converts wire statistics back to engine form (the inverse of
// StatsFrom, up to sub-millisecond truncation). A cluster coordinator uses
// it to merge workers' reported counters into one engine-shaped total.
func (s Stats) ToCore() core.Stats {
	d := func(ms float64) time.Duration { return time.Duration(ms * float64(time.Millisecond)) }
	return core.Stats{
		Iterations:        s.Iterations,
		LinearChecks:      s.LinearChecks,
		NonlinearChecks:   s.NonlinearChecks,
		ConflictClauses:   s.ConflictClauses,
		LossyBlocks:       s.LossyBlocks,
		NESplits:          s.NESplits,
		LemmasPublished:   s.LemmasPublished,
		LemmasImported:    s.LemmasImported,
		LemmasDeduped:     s.LemmasDeduped,
		TheoryCacheHits:   s.TheoryCacheHits,
		TheoryCacheMisses: s.TheoryCacheMisses,
		SessionSolves:     s.SessionSolves,
		NLPUnknown:        s.NLPUnknown,
		NLPUnknownRescued: s.NLPUnknownRescued,
		PolyARRegions:     s.PolyARRegions,
		PolyARPruned:      s.PolyARPruned,
		PolyARWitnesses:   s.PolyARWitnesses,
		BoolTime:          d(s.BoolMS),
		LinearTime:        d(s.LinearMS),
		NonlinearTime:     d(s.NonlinearMS),
		WallTime:          d(s.WallMS),
	}
}

// Model is the JSON rendering of a satisfying valuation.
type Model struct {
	// Bool is the Boolean assignment, index i holding variable i+1.
	Bool []bool `json:"bool"`
	// Real is the arithmetic witness by variable name.
	Real map[string]float64 `json:"real,omitempty"`
}

// ModelFrom converts an engine model to the wire form.
func ModelFrom(m core.Model) *Model {
	out := &Model{Bool: m.Bool}
	if len(m.Real) > 0 {
		out.Real = m.Real
	}
	return out
}

// SolveResponse is the JSON body of a completed solve (HTTP 200) and the
// payload of the final "result" stream event.
type SolveResponse struct {
	// Status is the verdict: "sat", "unsat", or "unknown".
	Status string `json:"status"`
	// ExitCode is the stand-alone tool's exit code for this verdict
	// (0 sat / 10 unsat / 20 unknown), keeping scripted clients of the CLI
	// and of the service in one vocabulary.
	ExitCode int `json:"exit_code"`
	// Reason classifies a non-definitive verdict: "timeout", "canceled",
	// or an engine diagnostic. Empty on sat/unsat.
	Reason string `json:"reason,omitempty"`
	// Model is the satisfying valuation (sat only).
	Model *Model `json:"model,omitempty"`
	// Winner names the winning portfolio strategy (portfolio runs only).
	Winner string `json:"winner,omitempty"`
	// Stats carries the engine counters of this solve (portfolio runs:
	// summed over members).
	Stats Stats `json:"stats"`
}

// ErrorResponse is the JSON body of every non-200 response.
type ErrorResponse struct {
	// Error is the human-readable diagnostic.
	Error string `json:"error"`
	// ExitCode is the stand-alone tool's exit code for this failure class
	// (2 usage/input error, 20 transient/unknown, 1 internal).
	ExitCode int `json:"exit_code"`
}

// Stream event types (the "type" field of each NDJSON line).
const (
	// EventTrace is one engine iteration report.
	EventTrace = "trace"
	// EventResult is the final event carrying the SolveResponse.
	EventResult = "result"
	// EventError is the final event of a failed solve.
	EventError = "error"
)

// StreamEvent is one NDJSON line of a streaming solve.
type StreamEvent struct {
	Type string `json:"type"`
	// Trace fields (Type == EventTrace), mirroring core.Event.
	Iteration int    `json:"iteration,omitempty"`
	Kind      string `json:"kind,omitempty"`
	ClauseLen int    `json:"clause_len,omitempty"`
	Imported  int    `json:"imported,omitempty"`
	CacheHit  bool   `json:"cache_hit,omitempty"`
	// Regions/Pruned carry a polyar event's refinement work.
	Regions int `json:"regions,omitempty"`
	Pruned  int `json:"pruned,omitempty"`
	// Result is the final verdict (Type == EventResult).
	Result *SolveResponse `json:"result,omitempty"`
	// Error is the failure diagnostic (Type == EventError).
	Error string `json:"error,omitempty"`
}

// TraceEvent converts an engine trace event to its stream form.
func TraceEvent(ev core.Event) StreamEvent {
	return StreamEvent{
		Type:      EventTrace,
		Iteration: ev.Iteration,
		Kind:      ev.Kind.String(),
		ClauseLen: ev.ClauseLen,
		Imported:  ev.Imported,
		CacheHit:  ev.CacheHit,
		Regions:   ev.Regions,
		Pruned:    ev.Pruned,
	}
}

// ---------------------------------------------------------------------------
// POST /v1/batch wire types. The request body is NDJSON: one BatchRequest
// header line carrying the shared base problem, then one BatchInstance line
// per related instance (clause deltas + assumption literals). The response
// is NDJSON too: one BatchEvent of type "item" per instance as it is
// solved over the shared warm session, closed by one "end" event.

// BatchRequest is the first NDJSON line of a batch request.
type BatchRequest struct {
	// Base is the shared base problem's text (in the format named by the
	// request's format parameter; extended DIMACS by default).
	Base string `json:"base"`
}

// BatchInstance is one NDJSON instance line: the delta against the shared
// base. Clauses are asserted in a fresh session frame (retracted after the
// instance's solve); Assume literals hold for the solve only.
type BatchInstance struct {
	// ID is an optional caller-chosen label echoed in the item result.
	ID string `json:"id,omitempty"`
	// Clauses are extra DIMACS clauses asserted for this instance.
	Clauses [][]int `json:"clauses,omitempty"`
	// Assume are assumption literals for this instance's solve.
	Assume []int `json:"assume,omitempty"`
}

// BatchItemResult is one instance's outcome within a batch.
type BatchItemResult struct {
	// Index is the 0-based position of the instance in the request.
	Index int `json:"index"`
	// ID echoes the instance's label.
	ID string `json:"id,omitempty"`
	// Result is the verdict (its Stats are this instance's per-call delta,
	// so summing item stats never double-counts the shared session).
	Result *SolveResponse `json:"result,omitempty"`
	// Error is the per-instance failure diagnostic (Result is nil then).
	Error string `json:"error,omitempty"`
}

// BatchSummary closes a batch response.
type BatchSummary struct {
	// Total is the number of instances in the request.
	Total int `json:"total"`
	// Solved counts instances with a definitive sat/unsat verdict.
	Solved int `json:"solved"`
	// Errors counts instances that failed.
	Errors int `json:"errors"`
}

// Batch stream event types (the "type" field of each response line).
const (
	// EventItem carries one instance's result.
	EventItem = "item"
	// EventEnd closes the stream with the batch summary.
	EventEnd = "end"
)

// BatchEvent is one NDJSON line of a batch response.
type BatchEvent struct {
	Type string `json:"type"`
	// Item is the instance outcome (Type == EventItem).
	Item *BatchItemResult `json:"item,omitempty"`
	// Summary closes the batch (Type == EventEnd).
	Summary *BatchSummary `json:"summary,omitempty"`
	// Error is a batch-level failure (Type == EventError).
	Error string `json:"error,omitempty"`
}

// Exit codes shared with the stand-alone tool (docs/exit-codes.md).
const (
	ExitSat      = 0
	ExitInternal = 1
	ExitUsage    = 2
	ExitUnsat    = 10
	ExitUnknown  = 20
)

// ExitCode maps an engine verdict to the stand-alone tool's exit code.
func ExitCode(s core.Status) int {
	switch s {
	case core.StatusSat:
		return ExitSat
	case core.StatusUnsat:
		return ExitUnsat
	}
	return ExitUnknown
}
