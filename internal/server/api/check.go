package api

// Wire types for POST /v1/check — the model-checking endpoint. The body
// is a Lustre program (or a Simulink model with format=simulink); the
// response is NDJSON: one CheckEvent of type "depth" per base/induction
// solve as it completes, closed by exactly one event of type "result" or
// "error". See docs/model-checking.md.

import (
	"fmt"
	"net/url"
	"strconv"
	"time"
)

// Program body formats accepted by POST /v1/check.
const (
	// FormatLustre is the mini-Lustre dialect (default).
	FormatLustre = "lustre"
	// FormatSimulink is the textual block-diagram format, translated
	// through lustre.FromSimulink before checking.
	FormatSimulink = "simulink"
)

// CheckParams are the knobs of one check request, travelling as query
// parameters (the body carries the program text).
type CheckParams struct {
	// Format is the program body's language: FormatLustre (default) or
	// FormatSimulink.
	Format string
	// K bounds the unrolling depth; 0 selects the checker default.
	K int
	// Property names the Boolean flow to verify (default: the sole
	// Boolean output).
	Property string
	// NoInduction restricts the run to plain BMC (no proofs).
	NoInduction bool
	// Timeout bounds queue wait + check; 0 selects the server default.
	Timeout time.Duration
}

// Values renders the parameters as URL query values (zero fields are
// omitted).
func (p CheckParams) Values() url.Values {
	v := url.Values{}
	if p.Format != "" && p.Format != FormatLustre {
		v.Set("format", p.Format)
	}
	if p.K > 0 {
		v.Set("k", strconv.Itoa(p.K))
	}
	if p.Property != "" {
		v.Set("prop", p.Property)
	}
	if p.NoInduction {
		v.Set("no_induction", "true")
	}
	if p.Timeout > 0 {
		v.Set("timeout", p.Timeout.String())
	}
	return v
}

// ParseCheckParams reads check parameters from URL query values.
func ParseCheckParams(v url.Values) (CheckParams, error) {
	var p CheckParams
	p.Format = v.Get("format")
	switch p.Format {
	case "":
		p.Format = FormatLustre
	case FormatLustre, FormatSimulink:
	default:
		return p, fmt.Errorf("unknown format %q (want %q or %q)", p.Format, FormatLustre, FormatSimulink)
	}
	if s := v.Get("k"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 0 {
			return p, fmt.Errorf("bad k %q: want a non-negative integer", s)
		}
		p.K = n
	}
	p.Property = v.Get("prop")
	if s := v.Get("no_induction"); s != "" {
		b, err := strconv.ParseBool(s)
		if err != nil {
			return p, fmt.Errorf("bad no_induction %q: want a boolean", s)
		}
		p.NoInduction = b
	} else if _, present := v["no_induction"]; present {
		p.NoInduction = true
	}
	if s := v.Get("timeout"); s != "" {
		d, err := time.ParseDuration(s)
		if err != nil || d < 0 {
			return p, fmt.Errorf("bad timeout %q: want a Go duration", s)
		}
		p.Timeout = d
	}
	return p, nil
}

// Check verdicts (CheckResponse.Verdict).
const (
	CheckProved       = "proved"
	CheckFalsified    = "falsified"
	CheckBoundReached = "bound_reached"
)

// CheckTrace is a counterexample: one input valuation per instant
// 0..Step, with the property failing at Step.
type CheckTrace struct {
	Property string               `json:"property"`
	Step     int                  `json:"step"`
	Inputs   []map[string]float64 `json:"inputs"`
}

// CheckResponse is the final payload of a check request.
type CheckResponse struct {
	// Verdict is "proved", "falsified", or "bound_reached".
	Verdict string `json:"verdict"`
	// K is the proof depth (proved), the violation instant (falsified),
	// or the exhausted bound (bound_reached).
	K int `json:"k"`
	// ExitCode keeps scripted clients of the CLI and of the service in
	// one vocabulary: 0 proved, 10 falsified, 20 bound reached.
	ExitCode int `json:"exit_code"`
	// Property is the flow that was verified.
	Property string `json:"property,omitempty"`
	// Induction reports that the proof came from a k-induction step case.
	Induction bool `json:"induction,omitempty"`
	// Certified reports that the counterexample replayed concretely.
	Certified bool `json:"certified,omitempty"`
	// Depths is the number of unrolling depths explored.
	Depths int `json:"depths"`
	// Reason explains a bound_reached verdict.
	Reason string `json:"reason,omitempty"`
	// Trace is the counterexample (falsified only).
	Trace *CheckTrace `json:"trace,omitempty"`
	// Stats carries the engine counters of the whole run.
	Stats Stats `json:"stats"`
}

// CheckDepth is one per-depth solver verdict, streamed as it happens.
type CheckDepth struct {
	Depth int `json:"depth"`
	// Phase is "base" (BMC) or "induction" (k-induction step case).
	Phase string `json:"phase"`
	// Status is the solver verdict for the phase: "sat", "unsat",
	// "unknown", or "error".
	Status string `json:"status"`
}

// Check stream event types (the "type" field of each NDJSON line).
const (
	// CheckEventDepth carries one per-depth solver verdict.
	CheckEventDepth = "depth"
)

// CheckEvent is one NDJSON line of a check response. The terminal line is
// Type EventResult (Result set) or EventError (Error set).
type CheckEvent struct {
	Type string `json:"type"`
	// Depth is the per-depth report (Type == CheckEventDepth).
	Depth *CheckDepth `json:"depth,omitempty"`
	// Result is the final verdict (Type == EventResult).
	Result *CheckResponse `json:"result,omitempty"`
	// Error is the failure diagnostic (Type == EventError).
	Error string `json:"error,omitempty"`
}

// CheckExitCode maps a check verdict to the stand-alone tool's exit code.
func CheckExitCode(verdict string) int {
	switch verdict {
	case CheckProved:
		return ExitSat
	case CheckFalsified:
		return ExitUnsat
	}
	return ExitUnknown
}
