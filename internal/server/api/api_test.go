package api

import (
	"net/url"
	"testing"
	"time"

	"absolver/internal/core"
)

// TestParamsRoundTrip pins the wire format: Values and ParseParams must
// invert each other for every field.
func TestParamsRoundTrip(t *testing.T) {
	want := SolveParams{
		Format: FormatSMTLIB, Portfolio: 4, NoShare: true, Restart: true,
		NoIIS: true, NoLemmas: true, NoCache: true, CheckModels: true,
		Timeout: 90 * time.Second, Stream: true,
	}
	got, err := ParseParams(want.Values())
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, want)
	}

	// Zero value round-trips to the defaulted format.
	got, err = ParseParams(SolveParams{}.Values())
	if err != nil {
		t.Fatal(err)
	}
	if got != (SolveParams{Format: FormatDIMACS}) {
		t.Fatalf("zero round trip: %+v", got)
	}
}

func TestParseParamsForgiving(t *testing.T) {
	// Bare boolean keys (curl's ?restart) mean true.
	v, _ := url.ParseQuery("restart&no_cache=1&timeout=5s")
	p, err := ParseParams(v)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Restart || !p.NoCache || p.Timeout != 5*time.Second {
		t.Fatalf("bare keys: %+v", p)
	}
}

func TestParseParamsRejects(t *testing.T) {
	for _, raw := range []string{
		"format=tptp", "portfolio=-1", "portfolio=two",
		"restart=maybe", "timeout=fast", "timeout=-3s",
	} {
		v, _ := url.ParseQuery(raw)
		if _, err := ParseParams(v); err == nil {
			t.Errorf("%q accepted, want error", raw)
		}
	}
}

// TestExitCodes pins the HTTP body's exit_code field to the CLI contract
// (docs/exit-codes.md).
func TestExitCodes(t *testing.T) {
	cases := map[core.Status]int{
		core.StatusSat:     ExitSat,
		core.StatusUnsat:   ExitUnsat,
		core.StatusUnknown: ExitUnknown,
	}
	for status, want := range cases {
		if got := ExitCode(status); got != want {
			t.Errorf("ExitCode(%v) = %d, want %d", status, got, want)
		}
	}
	if ExitSat != 0 || ExitInternal != 1 || ExitUsage != 2 || ExitUnsat != 10 || ExitUnknown != 20 {
		t.Error("exit code constants drifted from docs/exit-codes.md")
	}
}
