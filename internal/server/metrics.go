package server

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"absolver/internal/core"
)

// ClusterMetrics counts a coordinator's cube-and-conquer activity. The
// cluster package records into it through its Observer interface; the
// server renders it as the absolverd_cluster_* series when Config wires it
// in. All methods are safe for concurrent use.
type ClusterMetrics struct {
	cubesIssued    atomic.Int64
	cubesSolved    atomic.Int64
	cubesRequeued  atomic.Int64
	workerFailures atomic.Int64
	// LemmasRelayed, when set, reports clauses the coordinator's relay has
	// delivered across workers (exchange.Relay.LemmasRelayed).
	LemmasRelayed func() int64
}

// CubeIssued records one cube dispatched to a worker.
func (c *ClusterMetrics) CubeIssued() { c.cubesIssued.Add(1) }

// CubeSolved records one cube that reached a terminal verdict.
func (c *ClusterMetrics) CubeSolved() { c.cubesSolved.Add(1) }

// CubeRequeued records one cube sent back to the queue after its worker
// failed.
func (c *ClusterMetrics) CubeRequeued() { c.cubesRequeued.Add(1) }

// WorkerFailure records one failed worker dispatch (transport error or
// retryable HTTP rejection).
func (c *ClusterMetrics) WorkerFailure() { c.workerFailures.Add(1) }

// Job outcome classes for the solves_total counter. Every admitted job
// lands in exactly one class when it finishes.
const (
	verdictSat      = "sat"
	verdictUnsat    = "unsat"
	verdictUnknown  = "unknown"
	verdictCanceled = "canceled" // client went away mid-solve
	verdictError    = "error"    // engine / input failure after admission
)

// Admission rejection reasons for the rejected_total counter.
const (
	rejectQueueFull    = "queue_full"
	rejectDraining     = "draining"
	rejectBodyTooLarge = "body_too_large"
	rejectBadRequest   = "bad_request"
)

// metrics aggregates service- and engine-level counters across all jobs.
// Writes happen under one mutex — contention is negligible next to a
// solve — and rendering takes a consistent snapshot under the same lock.
type metrics struct {
	mu       sync.Mutex
	solves   map[string]int64 // by verdict class
	rejected map[string]int64 // by admission rejection reason
	engine   core.Stats       // summed over every finished job
	waitTime time.Duration    // total admission→start queue wait

	cacheHits      int64 // requests answered from the verdict cache
	cacheMisses    int64 // cacheable requests that had to solve
	batchRequests  int64 // completed /v1/batch runs
	batchInstances int64 // instances solved across all batch runs

	checks         map[string]int64 // completed /v1/check runs, by verdict
	checkDepths    int64            // unrolling depths explored across checks
	checkInduction int64            // checks whose proof came from induction
}

func newMetrics() *metrics {
	m := &metrics{solves: map[string]int64{}, rejected: map[string]int64{}, checks: map[string]int64{}}
	// Pre-seed every class so the /metrics series set is stable from the
	// first scrape.
	for _, v := range []string{verdictSat, verdictUnsat, verdictUnknown, verdictCanceled, verdictError} {
		m.solves[v] = 0
	}
	for _, r := range []string{rejectQueueFull, rejectDraining, rejectBodyTooLarge, rejectBadRequest} {
		m.rejected[r] = 0
	}
	for _, v := range []string{"proved", "falsified", "bound_reached", verdictError} {
		m.checks[v] = 0
	}
	return m
}

func (m *metrics) jobDone(verdict string, st core.Stats, wait time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.solves[verdict]++
	m.engine.Merge(st)
	m.waitTime += wait
}

func (m *metrics) cacheHit() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.cacheHits++
}

func (m *metrics) cacheMiss() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.cacheMisses++
}

func (m *metrics) batchDone(instances int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.batchRequests++
	m.batchInstances += int64(instances)
}

func (m *metrics) checkDone(verdict string, depths int, induction bool, st core.Stats, wait time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.checks[verdict]++
	m.checkDepths += int64(depths)
	if induction {
		m.checkInduction++
	}
	m.engine.Merge(st)
	m.waitTime += wait
}

func (m *metrics) reject(reason string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.rejected[reason]++
}

func (m *metrics) rejectedCount(reason string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.rejected[reason]
}

// gauges are the point-in-time values rendered next to the counters.
type gauges struct {
	queueDepth    int
	queueCapacity int
	workers       int
	workersBusy   int
	// cluster, when non-nil, adds the absolverd_cluster_* series.
	cluster *ClusterMetrics
}

// write renders the Prometheus text exposition format. Keys are emitted in
// sorted order so scrapes (and tests) see deterministic output.
func (m *metrics) write(w io.Writer, g gauges) {
	m.mu.Lock()
	solves := make(map[string]int64, len(m.solves))
	for k, v := range m.solves {
		solves[k] = v
	}
	rejected := make(map[string]int64, len(m.rejected))
	for k, v := range m.rejected {
		rejected[k] = v
	}
	engine := m.engine
	wait := m.waitTime
	cacheHits, cacheMisses := m.cacheHits, m.cacheMisses
	batchRequests, batchInstances := m.batchRequests, m.batchInstances
	checks := make(map[string]int64, len(m.checks))
	for k, v := range m.checks {
		checks[k] = v
	}
	checkDepths, checkInduction := m.checkDepths, m.checkInduction
	m.mu.Unlock()

	fmt.Fprintln(w, "# HELP absolverd_solves_total Completed solve jobs by outcome class.")
	fmt.Fprintln(w, "# TYPE absolverd_solves_total counter")
	for _, k := range sortedKeys(solves) {
		fmt.Fprintf(w, "absolverd_solves_total{verdict=%q} %d\n", k, solves[k])
	}
	fmt.Fprintln(w, "# HELP absolverd_rejected_total Requests rejected before admission, by reason.")
	fmt.Fprintln(w, "# TYPE absolverd_rejected_total counter")
	for _, k := range sortedKeys(rejected) {
		fmt.Fprintf(w, "absolverd_rejected_total{reason=%q} %d\n", k, rejected[k])
	}

	fmt.Fprintln(w, "# HELP absolverd_queue_depth Jobs admitted but not yet picked up by a worker.")
	fmt.Fprintln(w, "# TYPE absolverd_queue_depth gauge")
	fmt.Fprintf(w, "absolverd_queue_depth %d\n", g.queueDepth)
	fmt.Fprintln(w, "# HELP absolverd_queue_capacity Bounded queue capacity (jobs beyond busy workers).")
	fmt.Fprintln(w, "# TYPE absolverd_queue_capacity gauge")
	fmt.Fprintf(w, "absolverd_queue_capacity %d\n", g.queueCapacity)
	fmt.Fprintln(w, "# HELP absolverd_workers Size of the fixed worker pool.")
	fmt.Fprintln(w, "# TYPE absolverd_workers gauge")
	fmt.Fprintf(w, "absolverd_workers %d\n", g.workers)
	fmt.Fprintln(w, "# HELP absolverd_workers_busy Workers currently running a solve.")
	fmt.Fprintln(w, "# TYPE absolverd_workers_busy gauge")
	fmt.Fprintf(w, "absolverd_workers_busy %d\n", g.workersBusy)

	fmt.Fprintln(w, "# HELP absolverd_cache_hits_total Requests answered from the canonical verdict cache.")
	fmt.Fprintln(w, "# TYPE absolverd_cache_hits_total counter")
	fmt.Fprintf(w, "absolverd_cache_hits_total %d\n", cacheHits)
	fmt.Fprintln(w, "# HELP absolverd_cache_misses_total Cacheable requests that required a solve.")
	fmt.Fprintln(w, "# TYPE absolverd_cache_misses_total counter")
	fmt.Fprintf(w, "absolverd_cache_misses_total %d\n", cacheMisses)
	fmt.Fprintln(w, "# HELP absolverd_batch_requests_total Completed /v1/batch runs.")
	fmt.Fprintln(w, "# TYPE absolverd_batch_requests_total counter")
	fmt.Fprintf(w, "absolverd_batch_requests_total %d\n", batchRequests)
	fmt.Fprintln(w, "# HELP absolverd_batch_instances_total Instances solved across all batch runs.")
	fmt.Fprintln(w, "# TYPE absolverd_batch_instances_total counter")
	fmt.Fprintf(w, "absolverd_batch_instances_total %d\n", batchInstances)
	fmt.Fprintln(w, "# HELP absolverd_check_requests_total Completed /v1/check runs by verdict.")
	fmt.Fprintln(w, "# TYPE absolverd_check_requests_total counter")
	for _, k := range sortedKeys(checks) {
		fmt.Fprintf(w, "absolverd_check_requests_total{verdict=%q} %d\n", k, checks[k])
	}
	fmt.Fprintln(w, "# HELP absolverd_check_depths_total Unrolling depths explored across all checks.")
	fmt.Fprintln(w, "# TYPE absolverd_check_depths_total counter")
	fmt.Fprintf(w, "absolverd_check_depths_total %d\n", checkDepths)
	fmt.Fprintln(w, "# HELP absolverd_check_induction_total Checks proved by a k-induction step case.")
	fmt.Fprintln(w, "# TYPE absolverd_check_induction_total counter")
	fmt.Fprintf(w, "absolverd_check_induction_total %d\n", checkInduction)

	fmt.Fprintln(w, "# HELP absolverd_queue_wait_seconds_total Cumulative admission-to-start wait across jobs.")
	fmt.Fprintln(w, "# TYPE absolverd_queue_wait_seconds_total counter")
	fmt.Fprintf(w, "absolverd_queue_wait_seconds_total %g\n", wait.Seconds())

	// Engine counters, via the core.Stats aggregation hook.
	counters := engine.Counters()
	fmt.Fprintln(w, "# HELP absolverd_engine_total Engine counters summed over all finished jobs (core.Stats).")
	for _, k := range sortedKeys(counters) {
		fmt.Fprintf(w, "# TYPE absolverd_engine_%s_total counter\n", k)
		fmt.Fprintf(w, "absolverd_engine_%s_total %d\n", k, counters[k])
	}
	fmt.Fprintln(w, "# HELP absolverd_engine_wall_seconds_total Engine wall time summed over all finished jobs.")
	fmt.Fprintln(w, "# TYPE absolverd_engine_wall_seconds_total counter")
	fmt.Fprintf(w, "absolverd_engine_wall_seconds_total %g\n", engine.WallTime.Seconds())

	// The nonlinear unknown-rate — the north-star metric of the PolyAR
	// subsystem — gets first-class series (beyond the generic engine
	// counters above): undecided nonlinear checks and how many of them the
	// abstraction-refinement fallback rescued to a definitive verdict.
	fmt.Fprintln(w, "# HELP absolverd_nlp_unknown_total Nonlinear theory checks the penalty solver left undecided.")
	fmt.Fprintln(w, "# TYPE absolverd_nlp_unknown_total counter")
	fmt.Fprintf(w, "absolverd_nlp_unknown_total %d\n", engine.NLPUnknown)
	fmt.Fprintln(w, "# HELP absolverd_nlp_rescued_total Undecided nonlinear checks PolyAR converted to a definitive verdict.")
	fmt.Fprintln(w, "# TYPE absolverd_nlp_rescued_total counter")
	fmt.Fprintf(w, "absolverd_nlp_rescued_total %d\n", engine.NLPUnknownRescued)

	if g.cluster != nil {
		c := g.cluster
		fmt.Fprintln(w, "# HELP absolverd_cluster_cubes_issued_total Cubes dispatched to workers.")
		fmt.Fprintln(w, "# TYPE absolverd_cluster_cubes_issued_total counter")
		fmt.Fprintf(w, "absolverd_cluster_cubes_issued_total %d\n", c.cubesIssued.Load())
		fmt.Fprintln(w, "# HELP absolverd_cluster_cubes_solved_total Cubes with a terminal verdict.")
		fmt.Fprintln(w, "# TYPE absolverd_cluster_cubes_solved_total counter")
		fmt.Fprintf(w, "absolverd_cluster_cubes_solved_total %d\n", c.cubesSolved.Load())
		fmt.Fprintln(w, "# HELP absolverd_cluster_cubes_requeued_total Cubes requeued after a worker failure.")
		fmt.Fprintln(w, "# TYPE absolverd_cluster_cubes_requeued_total counter")
		fmt.Fprintf(w, "absolverd_cluster_cubes_requeued_total %d\n", c.cubesRequeued.Load())
		fmt.Fprintln(w, "# HELP absolverd_cluster_worker_failures_total Failed worker dispatches.")
		fmt.Fprintln(w, "# TYPE absolverd_cluster_worker_failures_total counter")
		fmt.Fprintf(w, "absolverd_cluster_worker_failures_total %d\n", c.workerFailures.Load())
		var relayed int64
		if c.LemmasRelayed != nil {
			relayed = c.LemmasRelayed()
		}
		fmt.Fprintln(w, "# HELP absolverd_cluster_lemmas_relayed_total Lemmas delivered across workers by the relay.")
		fmt.Fprintln(w, "# TYPE absolverd_cluster_lemmas_relayed_total counter")
		fmt.Fprintf(w, "absolverd_cluster_lemmas_relayed_total %d\n", relayed)
	}
}

func sortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
