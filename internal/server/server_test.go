package server_test

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"absolver/internal/server"
	"absolver/internal/server/api"
	"absolver/internal/server/client"
)

// Small fixed problems shared across the suite.
const (
	satDIMACS   = "p cnf 2 1\n1 2 0\nc def real 1 x >= 1\n"
	unsatDIMACS = "p cnf 2 2\n1 0\n2 0\nc def real 1 x + y >= 5\nc def real 2 x + y <= 4\n"
	satSMTLIB   = `(benchmark b :logic QF_LRA :extrafuns ((x Real)) :formula (>= x 1))`
	unsatSMTLIB = `(benchmark b :logic QF_LRA :extrafuns ((x Real)) :formula (and (>= x 5) (<= x 4)))`
)

// newTestServer starts a server and an httptest front end, returning the
// client. Cleanup shuts both down.
func newTestServer(t *testing.T, cfg server.Config) (*server.Server, *client.Client) {
	t.Helper()
	srv := server.New(cfg)
	srv.Start()
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
		hs.Close()
	})
	return srv, client.New(hs.URL)
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestSolveVerdictsBothFormats(t *testing.T) {
	_, c := newTestServer(t, server.Config{Workers: 2, QueueDepth: 4})
	ctx := context.Background()

	resp, err := c.Solve(ctx, satDIMACS, api.SolveParams{})
	if err != nil {
		t.Fatalf("sat dimacs: %v", err)
	}
	if resp.Status != "sat" || resp.ExitCode != api.ExitSat || resp.Model == nil {
		t.Fatalf("sat dimacs: %+v", resp)
	}
	if resp.Stats.Iterations == 0 {
		t.Fatalf("sat dimacs: stats not populated: %+v", resp.Stats)
	}

	resp, err = c.Solve(ctx, unsatDIMACS, api.SolveParams{})
	if err != nil {
		t.Fatalf("unsat dimacs: %v", err)
	}
	if resp.Status != "unsat" || resp.ExitCode != api.ExitUnsat || resp.Model != nil {
		t.Fatalf("unsat dimacs: %+v", resp)
	}

	resp, err = c.Solve(ctx, satSMTLIB, api.SolveParams{Format: api.FormatSMTLIB})
	if err != nil {
		t.Fatalf("sat smtlib: %v", err)
	}
	if resp.Status != "sat" || resp.Model == nil {
		t.Fatalf("sat smtlib: %+v", resp)
	}
	if x, ok := resp.Model.Real["x"]; !ok || x < 1 {
		t.Fatalf("sat smtlib: witness x = %v (%v)", x, ok)
	}

	resp, err = c.Solve(ctx, unsatSMTLIB, api.SolveParams{Format: api.FormatSMTLIB})
	if err != nil {
		t.Fatalf("unsat smtlib: %v", err)
	}
	if resp.Status != "unsat" || resp.ExitCode != api.ExitUnsat {
		t.Fatalf("unsat smtlib: %+v", resp)
	}
}

func TestSolveKnobs(t *testing.T) {
	_, c := newTestServer(t, server.Config{Workers: 4, QueueDepth: 8})
	ctx := context.Background()

	resp, err := c.Solve(ctx, satDIMACS, api.SolveParams{Portfolio: 3})
	if err != nil {
		t.Fatalf("portfolio: %v", err)
	}
	if resp.Status != "sat" || resp.Winner == "" {
		t.Fatalf("portfolio: want sat with a winner, got %+v", resp)
	}

	resp, err = c.Solve(ctx, satDIMACS, api.SolveParams{
		Restart: true, NoIIS: true, NoLemmas: true, NoCache: true, CheckModels: true,
		Timeout: 20 * time.Second,
	})
	if err != nil {
		t.Fatalf("knobs: %v", err)
	}
	if resp.Status != "sat" {
		t.Fatalf("knobs: %+v", resp)
	}
}

func TestBadRequests(t *testing.T) {
	_, c := newTestServer(t, server.Config{Workers: 1, QueueDepth: 2, MaxBodyBytes: 1 << 16, MaxPortfolio: 4})
	ctx := context.Background()

	assertHTTP := func(t *testing.T, err error, status int) *client.Error {
		t.Helper()
		if err == nil {
			t.Fatalf("want HTTP %d error, got nil", status)
		}
		ce, ok := err.(*client.Error)
		if !ok {
			t.Fatalf("want *client.Error, got %T: %v", err, err)
		}
		if ce.StatusCode != status {
			t.Fatalf("status = %d, want %d (%v)", ce.StatusCode, status, ce)
		}
		return ce
	}

	// Malformed problem body → 400, exit code 2.
	_, err := c.Solve(ctx, "\x00\x01 not dimacs at all", api.SolveParams{})
	ce := assertHTTP(t, err, http.StatusBadRequest)
	if ce.ExitCode != api.ExitUsage {
		t.Fatalf("exit code = %d, want %d", ce.ExitCode, api.ExitUsage)
	}

	// Oversized body → 413.
	big := satDIMACS + strings.Repeat("c padding padding padding\n", 1<<13)
	_, err = c.Solve(ctx, big, api.SolveParams{})
	assertHTTP(t, err, http.StatusRequestEntityTooLarge)

	// Unknown format → 400.
	_, err = c.Solve(ctx, satDIMACS, api.SolveParams{Format: "tptp"})
	assertHTTP(t, err, http.StatusBadRequest)

	// Portfolio beyond the server clamp → 400.
	_, err = c.Solve(ctx, satDIMACS, api.SolveParams{Portfolio: 99})
	assertHTTP(t, err, http.StatusBadRequest)

	// Wrong method → 405.
	resp, err := http.Get(c.BaseURL + "/v1/solve")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/solve: %d, want 405", resp.StatusCode)
	}
}

func TestStreamingTrace(t *testing.T) {
	_, c := newTestServer(t, server.Config{Workers: 1, QueueDepth: 2})
	var events []api.StreamEvent
	// NoLemmas forces the lazy loop to discover the conflict by theory
	// checking (static grounding would refute this problem in the Boolean
	// skeleton with zero iterations — and zero trace events).
	resp, err := c.SolveStream(context.Background(), unsatDIMACS, api.SolveParams{NoLemmas: true}, func(ev api.StreamEvent) error {
		events = append(events, ev)
		return nil
	})
	if err != nil {
		t.Fatalf("stream: %v", err)
	}
	if resp.Status != "unsat" {
		t.Fatalf("stream verdict: %+v", resp)
	}
	if len(events) == 0 {
		t.Fatal("no trace events streamed before the result")
	}
	for _, ev := range events {
		if ev.Type != api.EventTrace || ev.Iteration == 0 || ev.Kind == "" {
			t.Fatalf("bad trace event: %+v", ev)
		}
	}
}

// TestMetricsAfterKnownWorkload runs a fixed request mix against a fresh
// server and asserts the /metrics counters: solve counts by verdict, the
// queue gauges, and the engine (PR-3 Stats) counters, which must equal the
// sum of the per-response statistics.
func TestMetricsAfterKnownWorkload(t *testing.T) {
	_, c := newTestServer(t, server.Config{Workers: 2, QueueDepth: 4})
	ctx := context.Background()

	wantIterations := 0
	wantLinear := 0
	for i := 0; i < 3; i++ {
		resp, err := c.Solve(ctx, satDIMACS, api.SolveParams{})
		if err != nil || resp.Status != "sat" {
			t.Fatalf("sat %d: %v %+v", i, err, resp)
		}
		// Repeats of a canonically identical problem are served from the
		// verdict cache: only the first run's work reaches the engine
		// counters (cached responses replay the original stats).
		if i == 0 {
			wantIterations += resp.Stats.Iterations
			wantLinear += resp.Stats.LinearChecks
		}
	}
	resp, err := c.Solve(ctx, unsatDIMACS, api.SolveParams{})
	if err != nil || resp.Status != "unsat" {
		t.Fatalf("unsat: %v %+v", err, resp)
	}
	wantIterations += resp.Stats.Iterations
	wantLinear += resp.Stats.LinearChecks
	if _, err := c.Solve(ctx, "garbage body", api.SolveParams{}); err == nil {
		t.Fatal("garbage accepted")
	}

	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	expect := map[string]float64{
		`absolverd_solves_total{verdict="sat"}`:          1,
		`absolverd_solves_total{verdict="unsat"}`:        1,
		`absolverd_solves_total{verdict="unknown"}`:      0,
		`absolverd_solves_total{verdict="canceled"}`:     0,
		`absolverd_solves_total{verdict="error"}`:        0,
		`absolverd_rejected_total{reason="bad_request"}`: 1,
		`absolverd_rejected_total{reason="queue_full"}`:  0,
		`absolverd_cache_hits_total`:                     2,
		`absolverd_cache_misses_total`:                   2,
		`absolverd_batch_requests_total`:                 0,
		`absolverd_batch_instances_total`:                0,
		`absolverd_queue_depth`:                          0,
		`absolverd_queue_capacity`:                       4,
		`absolverd_workers`:                              2,
		`absolverd_workers_busy`:                         0,
		`absolverd_engine_iterations_total`:              float64(wantIterations),
		`absolverd_engine_linear_checks_total`:           float64(wantLinear),
	}
	for k, want := range expect {
		got, ok := m[k]
		if !ok {
			t.Errorf("metric %s missing", k)
			continue
		}
		if got != want {
			t.Errorf("metric %s = %g, want %g", k, got, want)
		}
	}
	// Every core.Stats counter must be exported, even when zero.
	for _, k := range []string{
		"iterations", "linear_checks", "nonlinear_checks", "conflict_clauses",
		"lossy_blocks", "ne_splits", "lemmas_published", "lemmas_imported",
		"lemmas_deduped", "theory_cache_hits", "theory_cache_misses",
		"session_solves",
	} {
		if _, ok := m["absolverd_engine_"+k+"_total"]; !ok {
			t.Errorf("engine counter %s not exported", k)
		}
	}
}

func TestHealthAndReady(t *testing.T) {
	srv, c := newTestServer(t, server.Config{Workers: 1, QueueDepth: 1})
	ctx := context.Background()
	if err := c.Healthz(ctx); err != nil {
		t.Fatalf("healthz: %v", err)
	}
	if err := c.Readyz(ctx); err != nil {
		t.Fatalf("readyz: %v", err)
	}
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := c.Readyz(ctx); err == nil {
		t.Fatal("readyz still OK after shutdown")
	}
	if err := c.Healthz(ctx); err != nil {
		t.Fatalf("healthz after shutdown: %v", err)
	}
	// New solves are refused with 503 after shutdown.
	_, err := c.Solve(ctx, satDIMACS, api.SolveParams{})
	ce, ok := err.(*client.Error)
	if !ok || ce.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("solve after shutdown: %v", err)
	}
	// A second Shutdown reports it has already happened.
	if err := srv.Shutdown(ctx); err != server.ErrAlreadyShutdown {
		t.Fatalf("second shutdown: %v", err)
	}
}
