// Package client is the Go client of the absolverd HTTP service: plain and
// streaming solves, metrics scraping, and health probes. The load and
// robustness suite drives the daemon through it, and service tooling can
// embed it to pipe problems into a running absolverd.
package client

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"absolver/internal/server/api"
)

// Client talks to one absolverd instance.
type Client struct {
	// BaseURL is the daemon's root, e.g. "http://127.0.0.1:8753".
	BaseURL string
	// HTTP is the underlying client (default http.DefaultClient).
	HTTP *http.Client
}

// New returns a client for the daemon at baseURL.
func New(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/")}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// Error is a non-200 service answer.
type Error struct {
	// StatusCode is the HTTP status.
	StatusCode int
	// ExitCode is the stand-alone tool's exit code for this failure class.
	ExitCode int
	// Message is the service diagnostic.
	Message string
	// RetryAfter is the server's backoff hint (429/503 responses).
	RetryAfter time.Duration
}

func (e *Error) Error() string {
	return fmt.Sprintf("absolverd: HTTP %d: %s", e.StatusCode, e.Message)
}

// IsQueueFull reports whether err is the service's admission-control
// rejection (HTTP 429).
func IsQueueFull(err error) bool {
	var se *Error
	return asError(err, &se) && se.StatusCode == http.StatusTooManyRequests
}

func asError(err error, target **Error) bool {
	for err != nil {
		if se, ok := err.(*Error); ok {
			*target = se
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// drainBody discards a bounded amount of unread response body. The
// net/http transport only reuses a keep-alive connection whose body was
// read to EOF; a JSON decode stops at the end of the value, so without an
// explicit drain every error response (and every Solve) would burn its
// connection — exactly the overhead a cluster coordinator's request rate
// cannot afford. The bound keeps a pathological server from feeding us
// forever.
func drainBody(r io.Reader) {
	io.Copy(io.Discard, io.LimitReader(r, 1<<20))
}

// parseRetryAfter reads a Retry-After header: integer seconds or an HTTP
// date per RFC 9110. An unparseable value falls back to one second rather
// than zero — a zero backoff would make every retry loop built on this
// client hot-loop against a server that explicitly asked for restraint.
func parseRetryAfter(h string) time.Duration {
	h = strings.TrimSpace(h)
	if h == "" {
		return 0
	}
	if secs, err := strconv.Atoi(h); err == nil && secs >= 0 {
		return time.Duration(secs) * time.Second
	}
	if at, err := http.ParseTime(h); err == nil {
		if d := time.Until(at); d > 0 {
			return d
		}
		return time.Second
	}
	return time.Second
}

// errorFromResponse decodes a non-200 body into *Error, draining the rest
// of the body so the connection can be reused.
func errorFromResponse(resp *http.Response) error {
	e := &Error{
		StatusCode: resp.StatusCode,
		RetryAfter: parseRetryAfter(resp.Header.Get("Retry-After")),
	}
	var body api.ErrorResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&body); err == nil {
		e.Message = body.Error
		e.ExitCode = body.ExitCode
	} else {
		e.Message = resp.Status
	}
	drainBody(resp.Body)
	return e
}

func (c *Client) solveURL(params api.SolveParams) string {
	u := c.BaseURL + "/v1/solve"
	if q := params.Values().Encode(); q != "" {
		u += "?" + q
	}
	return u
}

// Solve submits a problem body and waits for the verdict. A non-200 answer
// (bad input, queue full, draining, internal failure) is returned as *Error.
func (c *Client) Solve(ctx context.Context, problem string, params api.SolveParams) (*api.SolveResponse, error) {
	params.Stream = false
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.solveURL(params), strings.NewReader(problem))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "text/plain")
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, errorFromResponse(resp)
	}
	var out api.SolveResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("absolverd: decoding response: %w", err)
	}
	drainBody(resp.Body)
	return &out, nil
}

// SolveStream submits a problem and watches the lazy loop live: onEvent
// receives every trace event as it streams in; the final verdict is
// returned. A non-nil error from onEvent aborts the request (closing the
// connection, which cancels the in-flight solve server-side) and is
// returned verbatim.
func (c *Client) SolveStream(ctx context.Context, problem string, params api.SolveParams, onEvent func(api.StreamEvent) error) (*api.SolveResponse, error) {
	params.Stream = true
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.solveURL(params), strings.NewReader(problem))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "text/plain")
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, errorFromResponse(resp)
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var ev api.StreamEvent
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			return nil, fmt.Errorf("absolverd: bad stream line %q: %w", line, err)
		}
		switch ev.Type {
		case api.EventResult:
			// The result is the stream's final line; drain the trailing
			// newline so the connection is reusable. A caller-initiated
			// abort (onEvent error below) deliberately skips the drain —
			// closing an undrained stream is what cancels the solve
			// server-side.
			drainBody(resp.Body)
			return ev.Result, nil
		case api.EventError:
			drainBody(resp.Body)
			return nil, &Error{StatusCode: http.StatusOK, ExitCode: api.ExitInternal, Message: ev.Error}
		default:
			if onEvent != nil {
				if err := onEvent(ev); err != nil {
					return nil, err
				}
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return nil, fmt.Errorf("absolverd: stream ended without a result event")
}

// Batch submits a shared base problem plus per-instance deltas to
// POST /v1/batch, where they are solved incrementally over one warm
// session. It returns the per-instance results in submission order and the
// server's closing summary. A non-200 admission answer is returned as
// *Error; a batch-level failure after admission (e.g. a base problem the
// session cannot host) is returned as *Error with ExitInternal.
func (c *Client) Batch(ctx context.Context, base string, instances []api.BatchInstance, params api.SolveParams) ([]api.BatchItemResult, *api.BatchSummary, error) {
	params.Stream = false
	var body strings.Builder
	if err := json.NewEncoder(&body).Encode(api.BatchRequest{Base: base}); err != nil {
		return nil, nil, err
	}
	enc := json.NewEncoder(&body)
	for _, inst := range instances {
		if err := enc.Encode(inst); err != nil {
			return nil, nil, err
		}
	}
	u := c.BaseURL + "/v1/batch"
	if q := params.Values().Encode(); q != "" {
		u += "?" + q
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, strings.NewReader(body.String()))
	if err != nil {
		return nil, nil, err
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, nil, errorFromResponse(resp)
	}

	var items []api.BatchItemResult
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var ev api.BatchEvent
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			return items, nil, fmt.Errorf("absolverd: bad batch line %q: %w", line, err)
		}
		switch ev.Type {
		case api.EventItem:
			if ev.Item != nil {
				items = append(items, *ev.Item)
			}
		case api.EventEnd:
			drainBody(resp.Body)
			return items, ev.Summary, nil
		case api.EventError:
			drainBody(resp.Body)
			return items, nil, &Error{StatusCode: http.StatusOK, ExitCode: api.ExitInternal, Message: ev.Error}
		}
	}
	if err := sc.Err(); err != nil {
		return items, nil, err
	}
	return items, nil, fmt.Errorf("absolverd: batch stream ended without an end event")
}

// Check submits a program to POST /v1/check and waits for the verdict.
// onDepth, when non-nil, receives every per-depth solver report as it
// streams in; a non-nil error from it aborts the request (closing the
// connection, which cancels the in-flight check server-side) and is
// returned verbatim. A non-200 admission answer is returned as *Error; a
// failure after admission is returned as *Error with ExitInternal.
func (c *Client) Check(ctx context.Context, program string, params api.CheckParams, onDepth func(api.CheckDepth) error) (*api.CheckResponse, error) {
	u := c.BaseURL + "/v1/check"
	if q := params.Values().Encode(); q != "" {
		u += "?" + q
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, strings.NewReader(program))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "text/plain")
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, errorFromResponse(resp)
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var ev api.CheckEvent
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			return nil, fmt.Errorf("absolverd: bad check line %q: %w", line, err)
		}
		switch ev.Type {
		case api.EventResult:
			drainBody(resp.Body)
			return ev.Result, nil
		case api.EventError:
			drainBody(resp.Body)
			return nil, &Error{StatusCode: http.StatusOK, ExitCode: api.ExitInternal, Message: ev.Error}
		case api.CheckEventDepth:
			if onDepth != nil && ev.Depth != nil {
				if err := onDepth(*ev.Depth); err != nil {
					return nil, err
				}
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return nil, fmt.Errorf("absolverd: check stream ended without a result event")
}

// Metrics scrapes GET /metrics into a flat map keyed by series name
// including labels, e.g. `absolverd_solves_total{verdict="sat"}`.
func (c *Client) Metrics(ctx context.Context) (map[string]float64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, errorFromResponse(resp)
	}
	out := map[string]float64{}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			continue
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			return nil, fmt.Errorf("absolverd: bad metric line %q: %w", line, err)
		}
		out[line[:sp]] = v
	}
	return out, sc.Err()
}

// Healthz probes GET /healthz (nil = healthy).
func (c *Client) Healthz(ctx context.Context) error { return c.probe(ctx, "/healthz") }

// Readyz probes GET /readyz (nil = admitting; *Error with 503 while
// draining).
func (c *Client) Readyz(ctx context.Context) error { return c.probe(ctx, "/readyz") }

func (c *Client) probe(ctx context.Context, path string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+path, nil)
	if err != nil {
		return err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<10))
	if resp.StatusCode != http.StatusOK {
		return &Error{StatusCode: resp.StatusCode, Message: http.StatusText(resp.StatusCode)}
	}
	return nil
}
