package client

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"absolver/internal/server/api"
)

// TestParseRetryAfter pins the header grammar: integer seconds, HTTP-date,
// and the one-second fallback for garbage (never zero — a zero would make
// retry loops hot-loop against a server that asked for restraint).
func TestParseRetryAfter(t *testing.T) {
	for _, tc := range []struct {
		in       string
		min, max time.Duration
	}{
		{"", 0, 0},
		{"0", 0, 0},
		{"3", 3 * time.Second, 3 * time.Second},
		{" 7 ", 7 * time.Second, 7 * time.Second},
		{"-5", time.Second, time.Second},                            // negative seconds: unparseable per RFC
		{"soon", time.Second, time.Second},                          // garbage
		{"1.5", time.Second, time.Second},                           // fractional seconds: not in the grammar
		{"Mon, 02 Jan 2006 15:04:05 GMT", time.Second, time.Second}, // date in the past
		{time.Now().Add(10 * time.Second).UTC().Format(http.TimeFormat), 8 * time.Second, 10 * time.Second},
	} {
		got := parseRetryAfter(tc.in)
		if got < tc.min || got > tc.max {
			t.Errorf("parseRetryAfter(%q) = %v, want in [%v, %v]", tc.in, got, tc.min, tc.max)
		}
	}
}

// connCounter tracks distinct TCP connections accepted by a test server.
type connCounter struct {
	mu sync.Mutex
	n  int
}

func (c *connCounter) hook(_ net.Conn, state http.ConnState) {
	if state == http.StateNew {
		c.mu.Lock()
		c.n++
		c.mu.Unlock()
	}
}

func (c *connCounter) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// newCountingServer serves handler while counting fresh connections, with a
// dedicated keep-alive transport so other tests' pooled connections cannot
// interfere.
func newCountingServer(t *testing.T, handler http.HandlerFunc) (*Client, *connCounter) {
	t.Helper()
	counter := &connCounter{}
	srv := httptest.NewUnstartedServer(handler)
	srv.Config.ConnState = counter.hook
	srv.Start()
	t.Cleanup(srv.Close)
	tr := &http.Transport{}
	t.Cleanup(tr.CloseIdleConnections)
	c := New(srv.URL)
	c.HTTP = &http.Client{Transport: tr}
	return c, counter
}

// TestErrorResponsesReuseConnection pins the body-drain fix: sequential
// rejected solves must ride one keep-alive connection. Before the fix the
// JSON decode stopped at the end of the error value, the connection was
// closed undrained, and every request dialled anew.
func TestErrorResponsesReuseConnection(t *testing.T) {
	c, counter := newCountingServer(t, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "2")
		w.WriteHeader(http.StatusTooManyRequests)
		// Flush forces chunked encoding and flushing the value before the
		// handler returns puts the terminating chunk in a later segment —
		// the shape of any streamed or slow daemon response. The decoder
		// stops at the end of the JSON value without observing EOF; only an
		// explicit drain reads the terminator that makes the connection
		// reusable.
		json.NewEncoder(w).Encode(api.ErrorResponse{Error: "queue full", ExitCode: api.ExitUnknown})
		w.(http.Flusher).Flush()
		time.Sleep(50 * time.Millisecond)
	})
	for i := 0; i < 3; i++ {
		_, err := c.Solve(context.Background(), "p cnf 1 1\n1 0\n", api.SolveParams{})
		if !IsQueueFull(err) {
			t.Fatalf("request %d: err = %v, want queue-full", i, err)
		}
		var se *Error
		if asError(err, &se); se.RetryAfter != 2*time.Second {
			t.Fatalf("request %d: RetryAfter = %v, want 2s", i, se.RetryAfter)
		}
	}
	if got := counter.count(); got != 1 {
		t.Fatalf("3 sequential error responses used %d connections, want 1 (body not drained?)", got)
	}
}

// TestSolveReusesConnection: successful solves must also ride one
// connection — Solve stops decoding at the end of the JSON value, so the
// trailing newline has to be drained explicitly.
func TestSolveReusesConnection(t *testing.T) {
	c, counter := newCountingServer(t, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		// Chunked with a late terminator, as for any streamed or large
		// model payload — see TestErrorResponsesReuseConnection.
		json.NewEncoder(w).Encode(api.SolveResponse{Status: "unsat"})
		w.(http.Flusher).Flush()
		time.Sleep(50 * time.Millisecond)
	})
	for i := 0; i < 3; i++ {
		out, err := c.Solve(context.Background(), "p cnf 1 2\n1 0\n-1 0\n", api.SolveParams{})
		if err != nil || out.Status != "unsat" {
			t.Fatalf("request %d: out=%+v err=%v", i, out, err)
		}
	}
	if got := counter.count(); got != 1 {
		t.Fatalf("3 sequential solves used %d connections, want 1 (body not drained?)", got)
	}
}
