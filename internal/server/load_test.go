package server_test

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"absolver/internal/core"
	"absolver/internal/dimacs"
	"absolver/internal/server"
	"absolver/internal/server/api"
	"absolver/internal/server/client"
	"absolver/internal/testkit"
)

// gatedSolve returns a SolveFunc that signals admission-to-worker handoff
// on started and then parks until release closes (returning sat) or the
// job context ends (returning the context error) — deterministic timing
// for the queue-contract tests, no sleeps.
func gatedSolve(started chan<- struct{}, release <-chan struct{}) server.SolveFunc {
	return func(ctx context.Context, _ *core.Problem, _ api.SolveParams, _ core.TraceFunc) (server.Outcome, error) {
		started <- struct{}{}
		select {
		case <-release:
			return server.Outcome{Result: core.Result{
				Status: core.StatusSat,
				Model:  &core.Model{Bool: []bool{true, false}},
			}}, nil
		case <-ctx.Done():
			return server.Outcome{Result: core.Result{Status: core.StatusUnknown}}, ctx.Err()
		}
	}
}

func metric(t *testing.T, c *client.Client, key string) float64 {
	t.Helper()
	m, err := c.Metrics(context.Background())
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	return m[key]
}

// TestAdmissionControlContract proves the serving contract: with W workers
// and queue depth Q, W+Q concurrent solves are all admitted and complete,
// and the (W+Q+1)-th is rejected with 429 + Retry-After.
func TestAdmissionControlContract(t *testing.T) {
	const W, Q = 2, 3
	started := make(chan struct{}, W+Q)
	release := make(chan struct{})
	_, c := newTestServer(t, server.Config{
		Workers: W, QueueDepth: Q,
		SolveFunc: gatedSolve(started, release),
	})
	ctx := context.Background()

	type answer struct {
		resp *api.SolveResponse
		err  error
	}
	answers := make(chan answer, W+Q)
	solve := func() {
		resp, err := c.Solve(ctx, satDIMACS, api.SolveParams{Timeout: time.Minute})
		answers <- answer{resp, err}
	}

	// Fill the workers and wait until every one is inside its solve.
	for i := 0; i < W; i++ {
		go solve()
	}
	for i := 0; i < W; i++ {
		<-started
	}
	// Fill the queue behind them.
	for i := 0; i < Q; i++ {
		go solve()
	}
	waitFor(t, "queue to fill", func() bool {
		return metric(t, c, "absolverd_queue_depth") == Q
	})

	// The (W+Q+1)-th concurrent request must be bounced, with a backoff hint.
	_, err := c.Solve(ctx, satDIMACS, api.SolveParams{})
	if !client.IsQueueFull(err) {
		t.Fatalf("overload request: err = %v, want queue-full", err)
	}
	var ce *client.Error
	if errors.As(err, &ce); ce.RetryAfter <= 0 {
		t.Fatalf("429 without Retry-After hint: %+v", ce)
	}

	// Release the gate: every admitted solve completes satisfiably.
	close(release)
	for i := 0; i < W+Q; i++ {
		a := <-answers
		if a.err != nil {
			t.Fatalf("admitted solve %d failed: %v", i, a.err)
		}
		if a.resp.Status != "sat" {
			t.Fatalf("admitted solve %d: %+v", i, a.resp)
		}
	}
	if n := metric(t, c, `absolverd_rejected_total{reason="queue_full"}`); n != 1 {
		t.Fatalf("queue_full rejections = %g, want 1", n)
	}
	if n := metric(t, c, `absolverd_solves_total{verdict="sat"}`); n != W+Q {
		t.Fatalf("sat solves = %g, want %d", n, W+Q)
	}
}

// TestClientDisconnectCancelsSolve streams a long-running solve, watches a
// few trace events arrive live, then drops the connection — the in-flight
// solve must be cancelled through the request context, observed as a
// "canceled" job in /metrics and a freed worker.
func TestClientDisconnectCancelsSolve(t *testing.T) {
	// The solve emits a trace event every few milliseconds until its
	// context dies; it can only end by cancellation.
	tickingSolve := func(ctx context.Context, _ *core.Problem, _ api.SolveParams, trace core.TraceFunc) (server.Outcome, error) {
		for i := 1; ; i++ {
			select {
			case <-ctx.Done():
				return server.Outcome{Result: core.Result{Status: core.StatusUnknown}}, ctx.Err()
			case <-time.After(2 * time.Millisecond):
				if trace != nil {
					trace(core.Event{Iteration: i, Kind: core.EventConflict, ClauseLen: 2})
				}
			}
		}
	}
	_, c := newTestServer(t, server.Config{Workers: 1, QueueDepth: 1, SolveFunc: tickingSolve})

	errAbort := errors.New("client walks away")
	seen := 0
	_, err := c.SolveStream(context.Background(), satDIMACS, api.SolveParams{Timeout: time.Minute},
		func(ev api.StreamEvent) error {
			if ev.Type != api.EventTrace || ev.Iteration == 0 {
				return fmt.Errorf("bad event %+v", ev)
			}
			seen++
			if seen == 3 {
				return errAbort // closes the connection mid-solve
			}
			return nil
		})
	if !errors.Is(err, errAbort) {
		t.Fatalf("stream err = %v, want errAbort", err)
	}
	if seen != 3 {
		t.Fatalf("saw %d events, want 3", seen)
	}

	// The disconnect must cancel the solve: the job finishes as
	// "canceled" and the single worker becomes free again.
	waitFor(t, "in-flight solve to be canceled", func() bool {
		return metric(t, c, `absolverd_solves_total{verdict="canceled"}`) == 1
	})
	waitFor(t, "worker to free up", func() bool {
		return metric(t, c, "absolverd_workers_busy") == 0
	})
}

// TestShutdownUnderLoadDrains proves graceful shutdown: with workers busy
// and the queue non-empty, Shutdown stops admission (503 + not-ready) but
// every already-admitted job runs to completion before Shutdown returns.
func TestShutdownUnderLoadDrains(t *testing.T) {
	const W, Q = 1, 2
	started := make(chan struct{}, W+Q)
	release := make(chan struct{})
	srv, c := newTestServer(t, server.Config{
		Workers: W, QueueDepth: Q,
		SolveFunc: gatedSolve(started, release),
	})
	ctx := context.Background()

	answers := make(chan error, W+Q)
	for i := 0; i < W+Q; i++ {
		go func() {
			resp, err := c.Solve(ctx, satDIMACS, api.SolveParams{Timeout: time.Minute})
			if err == nil && resp.Status != "sat" {
				err = fmt.Errorf("verdict %s", resp.Status)
			}
			answers <- err
		}()
	}
	<-started // the worker is mid-solve
	waitFor(t, "queue to fill", func() bool {
		return metric(t, c, "absolverd_queue_depth") == Q
	})

	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- srv.Shutdown(ctx) }()

	// Draining: not ready, new work refused with 503.
	waitFor(t, "readyz to flip", func() bool { return c.Readyz(ctx) != nil })
	_, err := c.Solve(ctx, satDIMACS, api.SolveParams{})
	var ce *client.Error
	if !errors.As(err, &ce) || ce.StatusCode != 503 {
		t.Fatalf("solve while draining: %v, want 503", err)
	}
	select {
	case err := <-shutdownDone:
		t.Fatalf("Shutdown returned (%v) with jobs still gated", err)
	default:
	}

	// Release: every admitted job completes, then Shutdown returns.
	close(release)
	for i := 0; i < W+Q; i++ {
		if err := <-answers; err != nil {
			t.Fatalf("admitted job %d dropped during drain: %v", i, err)
		}
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if n := metric(t, c, `absolverd_solves_total{verdict="sat"}`); n != W+Q {
		t.Fatalf("drained solves = %g, want %d", n, W+Q)
	}
}

// TestConcurrentMixedFragmentHammer drives the real engine through the
// service with concurrent clients across all four testkit fragments —
// plain, portfolio, and streaming requests, with malformed and oversized
// payloads interleaved — and checks every verdict against a direct
// engine run of the same problem. Run under -race in CI.
func TestConcurrentMixedFragmentHammer(t *testing.T) {
	if testing.Short() {
		t.Skip("hammer test skipped in -short mode")
	}
	_, c := newTestServer(t, server.Config{Workers: 4, QueueDepth: 64, MaxBodyBytes: 1 << 16})
	ctx := context.Background()

	type workItem struct {
		name    string
		problem string
		params  api.SolveParams
		want    string
	}
	var work []workItem
	const seeds = 8
	for seed := int64(1); seed <= seeds; seed++ {
		for frag := testkit.Fragment(0); frag < testkit.NumFragments; frag++ {
			p := testkit.Generate(seed, frag)
			text, err := dimacs.WriteString(p)
			if err != nil {
				t.Fatalf("rendering %v/%d: %v", frag, seed, err)
			}
			// The expected verdict comes from a direct single-engine run —
			// deterministic since PR 2.
			res, err := core.NewEngine(testkit.Generate(seed, frag), core.Config{}).Solve()
			if err != nil {
				t.Fatalf("direct solve %v/%d: %v", frag, seed, err)
			}
			item := workItem{
				name:    fmt.Sprintf("%v/seed%d", frag, seed),
				problem: text,
				want:    res.Status.String(),
				params:  api.SolveParams{Timeout: time.Minute},
			}
			// Definitive fragments also race a portfolio (sound and
			// complete there, so the verdict must match); every third
			// item streams.
			if (frag == testkit.FragBool || frag == testkit.FragLinear) && seed%2 == 0 {
				item.params.Portfolio = 2
			}
			if seed%3 == 0 {
				item.params.Stream = true
			}
			work = append(work, item)
		}
	}

	var wg sync.WaitGroup
	errs := make(chan error, len(work)+8)
	for _, w := range work {
		wg.Add(1)
		go func(w workItem) {
			defer wg.Done()
			var resp *api.SolveResponse
			var err error
			if w.params.Stream {
				resp, err = c.SolveStream(ctx, w.problem, w.params, nil)
			} else {
				resp, err = c.Solve(ctx, w.problem, w.params)
			}
			if err != nil {
				errs <- fmt.Errorf("%s: %v", w.name, err)
				return
			}
			if resp.Status != w.want {
				errs <- fmt.Errorf("%s: verdict %s, want %s", w.name, resp.Status, w.want)
			}
		}(w)
	}
	// Hostile traffic rides along: malformed and oversized bodies.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var ce *client.Error
			if _, err := c.Solve(ctx, "p cnf broken\x00", api.SolveParams{}); !errors.As(err, &ce) || ce.StatusCode != 400 {
				errs <- fmt.Errorf("malformed %d: %v, want 400", i, err)
			}
			big := strings.Repeat("c padding line\n", 1<<13)
			if _, err := c.Solve(ctx, big, api.SolveParams{}); !errors.As(err, &ce) || ce.StatusCode != 413 {
				errs <- fmt.Errorf("oversized %d: %v, want 413", i, err)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Bookkeeping must balance: every well-formed request completed and
	// was counted, every hostile one was rejected.
	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	total := m[`absolverd_solves_total{verdict="sat"}`] +
		m[`absolverd_solves_total{verdict="unsat"}`] +
		m[`absolverd_solves_total{verdict="unknown"}`]
	if total != float64(len(work)) {
		t.Errorf("solves_total = %g, want %d", total, len(work))
	}
	if n := m[`absolverd_rejected_total{reason="bad_request"}`]; n != 4 {
		t.Errorf("bad_request rejections = %g, want 4", n)
	}
	if n := m[`absolverd_rejected_total{reason="body_too_large"}`]; n != 4 {
		t.Errorf("body_too_large rejections = %g, want 4", n)
	}
	if n := m["absolverd_engine_iterations_total"]; n <= 0 {
		t.Errorf("engine iterations not aggregated: %g", n)
	}
}
