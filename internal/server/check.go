package server

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strings"
	"time"

	"absolver/internal/core"
	"absolver/internal/lustre"
	"absolver/internal/mc"
	"absolver/internal/server/api"
	"absolver/internal/simulink"
)

// POST /v1/check runs the model-checking front end — BMC + k-induction
// over a Lustre program or Simulink model — on a worker, streaming one
// NDJSON depth event per base/induction solve and a terminal result or
// error event. A check occupies one queue slot and one worker for its
// whole duration and honours the same admission and drain contracts as
// /v1/solve.

// checkJob carries the check-specific halves of an admitted job.
type checkJob struct {
	prog   *lustre.Program
	params api.CheckParams
	// events streams depth reports and the terminal event to the handler;
	// runCheckJob closes it.
	events chan api.CheckEvent
}

func (s *Server) handleCheck(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, api.ExitUsage, "POST a program body to /v1/check")
		return
	}
	params, err := api.ParseCheckParams(r.URL.Query())
	if err != nil {
		s.metrics.reject(rejectBadRequest)
		writeError(w, http.StatusBadRequest, api.ExitUsage, "bad parameters: %v", err)
		return
	}
	if params.K > s.cfg.MaxCheckDepth {
		s.metrics.reject(rejectBadRequest)
		writeError(w, http.StatusBadRequest, api.ExitUsage,
			"k %d exceeds the server maximum %d", params.K, s.cfg.MaxCheckDepth)
		return
	}

	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	text, err := io.ReadAll(body)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.metrics.reject(rejectBodyTooLarge)
			writeError(w, http.StatusRequestEntityTooLarge, api.ExitUsage, "program body too large: %v", err)
			return
		}
		s.metrics.reject(rejectBadRequest)
		writeError(w, http.StatusBadRequest, api.ExitUsage, "program body: %v", err)
		return
	}

	var prog *lustre.Program
	switch params.Format {
	case api.FormatSimulink:
		m, perr := simulink.ParseModel(strings.NewReader(string(text)))
		if perr == nil {
			prog, err = lustre.FromSimulink(m)
		} else {
			err = perr
		}
	default:
		prog, err = lustre.Parse(string(text))
	}
	if err != nil {
		s.metrics.reject(rejectBadRequest)
		writeError(w, http.StatusBadRequest, api.ExitUsage, "program: %v", err)
		return
	}

	timeout := params.Timeout
	if timeout <= 0 {
		timeout = s.cfg.DefaultTimeout
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	j := &job{
		ctx:      ctx,
		admitted: time.Now(),
		done:     make(chan struct{}),
		check: &checkJob{
			prog:   prog,
			params: params,
			events: make(chan api.CheckEvent, 16),
		},
	}

	s.mu.Lock()
	if !s.started || s.draining {
		s.mu.Unlock()
		s.metrics.reject(rejectDraining)
		w.Header().Set("Retry-After", s.retryAfterHint(true))
		writeError(w, http.StatusServiceUnavailable, api.ExitUnknown, "server is draining")
		return
	}
	select {
	case s.queue <- j:
		s.jobs.Add(1)
		s.mu.Unlock()
	default:
		s.mu.Unlock()
		s.metrics.reject(rejectQueueFull)
		w.Header().Set("Retry-After", s.retryAfterHint(false))
		writeError(w, http.StatusTooManyRequests, api.ExitUnknown,
			"queue full (%d workers busy, %d queued)", s.cfg.Workers, cap(s.queue))
		return
	}

	// Stream depth events as they arrive; admission fixed the status code.
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	fl, _ := w.(http.Flusher)
	flush := func() {
		if fl != nil {
			fl.Flush()
		}
	}
	flush()
	enc := json.NewEncoder(w)
	clientGone := false
	for ev := range j.check.events {
		if clientGone {
			continue // drain so the worker's sends never park
		}
		if err := enc.Encode(ev); err != nil {
			clientGone = true
			continue
		}
		flush()
	}
	<-j.done
}

// runCheckJob runs an admitted check on a worker, streaming per-depth
// verdicts and closing with the result (or error) event.
func (s *Server) runCheckJob(j *job, wait time.Duration) {
	defer close(j.check.events)
	send := func(ev api.CheckEvent) {
		select {
		case j.check.events <- ev:
		case <-j.ctx.Done():
		}
	}

	opts := mc.Options{
		Property:    j.check.params.Property,
		MaxDepth:    j.check.params.K,
		NoInduction: j.check.params.NoInduction,
		Progress: func(ev mc.DepthEvent) {
			send(api.CheckEvent{Type: api.CheckEventDepth, Depth: &api.CheckDepth{
				Depth: ev.Depth, Phase: ev.Phase, Status: ev.Status,
			}})
		},
	}
	res, err := mc.Check(j.ctx, j.check.prog, opts)
	// Deadline and cancellation surface as errors from the solver but
	// still carry a sound partial result: report bound_reached rather
	// than failing the request.
	timedOut := err != nil && (errors.Is(err, core.ErrTimeout) || errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, context.Canceled))
	if err != nil && !timedOut {
		s.metrics.checkDone(verdictError, 0, false, res.Stats, wait)
		send(api.CheckEvent{Type: api.EventError, Error: err.Error()})
		return
	}

	resp := api.CheckResponse{
		Verdict:   string(res.Verdict),
		K:         res.K,
		ExitCode:  api.CheckExitCode(string(res.Verdict)),
		Property:  opts.Property,
		Induction: res.Induction,
		Certified: res.Certified,
		Depths:    res.Depths,
		Reason:    res.Reason,
		Stats:     api.StatsFrom(res.Stats),
	}
	if timedOut && resp.Reason == "" {
		resp.Reason = "timeout"
	}
	if res.Trace != nil {
		resp.Trace = &api.CheckTrace{
			Property: res.Trace.Property,
			Step:     res.Trace.Step,
			Inputs:   res.Trace.Inputs,
		}
	}
	s.metrics.checkDone(resp.Verdict, res.Depths, res.Induction, res.Stats, wait)
	send(api.CheckEvent{Type: api.EventResult, Result: &resp})
}
