package server

import (
	"strings"
	"testing"

	"absolver/internal/core"
)

// TestNLPMetricsBookkeeping pins the first-class nonlinear unknown-rate
// series: absolverd_nlp_unknown_total / absolverd_nlp_rescued_total must
// track the merged engine stats across jobs (alongside — not instead of —
// the generic absolverd_engine_* rendering of the same counters).
func TestNLPMetricsBookkeeping(t *testing.T) {
	m := newMetrics()
	m.jobDone(verdictSat, core.Stats{
		NLPUnknown: 3, NLPUnknownRescued: 2,
		PolyARRegions: 40, PolyARPruned: 25, PolyARWitnesses: 1,
	}, 0)
	m.jobDone(verdictUnsat, core.Stats{
		NLPUnknown: 2, NLPUnknownRescued: 1,
		PolyARRegions: 10, PolyARPruned: 10,
	}, 0)

	var sb strings.Builder
	m.write(&sb, gauges{})
	out := sb.String()

	for _, want := range []string{
		"# TYPE absolverd_nlp_unknown_total counter",
		"absolverd_nlp_unknown_total 5",
		"# TYPE absolverd_nlp_rescued_total counter",
		"absolverd_nlp_rescued_total 3",
		"absolverd_engine_nlp_unknown_total 5",
		"absolverd_engine_nlp_unknown_rescued_total 3",
		"absolverd_engine_polyar_regions_total 50",
		"absolverd_engine_polyar_pruned_total 35",
		"absolverd_engine_polyar_witnesses_total 1",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("metrics output missing %q", want)
		}
	}
}

// TestNLPMetricsZeroSeries checks the series exist (at zero) before any
// nonlinear work, so dashboards see a stable series set from first scrape.
func TestNLPMetricsZeroSeries(t *testing.T) {
	var sb strings.Builder
	newMetrics().write(&sb, gauges{})
	out := sb.String()
	for _, want := range []string{
		"absolverd_nlp_unknown_total 0",
		"absolverd_nlp_rescued_total 0",
		"absolverd_engine_polyar_regions_total 0",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("metrics output missing %q", want)
		}
	}
}
