// Package server is the solver-as-a-service subsystem: it exposes the
// engine over HTTP with a bounded job queue and a fixed worker pool
// (admission control instead of unbounded goroutine fan-out), per-request
// deadlines that flow into the engine's cooperative cancellation, NDJSON
// streaming of the lazy loop's trace events, and a Prometheus-style
// /metrics endpoint aggregating engine counters across all jobs.
//
// Serving contract:
//
//   - With queue depth Q and W workers, at most W+Q solves are admitted
//     concurrently; further requests are rejected with 429 + Retry-After.
//   - A request's timeout (query parameter, clamped to Config.MaxTimeout)
//     covers queue wait plus solve; expiry yields verdict "unknown" with
//     reason "timeout".
//   - A client disconnect cancels its in-flight solve via the request
//     context.
//   - Shutdown stops admitting (503), drains every admitted job, then
//     stops the workers — nothing admitted is ever dropped.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"absolver/internal/core"
	"absolver/internal/dimacs"
	"absolver/internal/exchange"
	"absolver/internal/portfolio"
	"absolver/internal/server/api"
	"absolver/internal/smtlib"
)

// Outcome is what a solve produced: the engine result (Stats merged over
// members for a portfolio run) plus the winning strategy's name.
type Outcome struct {
	Result core.Result
	Winner string
}

// SolveFunc decides one admitted job. The default (nil) runs the engine —
// single or portfolio per the request's parameters; the load/robustness
// suite substitutes gated functions to pin queue timing, and embedders can
// route to custom backends. trace is nil unless the request streams.
type SolveFunc func(ctx context.Context, p *core.Problem, params api.SolveParams, trace core.TraceFunc) (Outcome, error)

// Config tunes the service. Zero fields select the documented defaults.
type Config struct {
	// Workers is the fixed solver pool size (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds jobs admitted beyond the busy workers (default 64).
	QueueDepth int
	// MaxBodyBytes caps a request body (default 8 MiB); larger bodies get 413.
	MaxBodyBytes int64
	// DefaultTimeout applies when a request names none (default 30s).
	DefaultTimeout time.Duration
	// MaxTimeout clamps the per-request timeout (default 5m).
	MaxTimeout time.Duration
	// MaxPortfolio caps the portfolio parameter (default 8); larger
	// requests get 400.
	MaxPortfolio int
	// CacheSize bounds the canonical verdict cache (default 256 entries);
	// negative disables caching entirely.
	CacheSize int
	// MaxBatchInstances caps the instances accepted per /v1/batch request
	// (default 1000); larger batches get 400.
	MaxBatchInstances int
	// MaxCheckDepth caps the k parameter of /v1/check (default 64);
	// deeper requests get 400.
	MaxCheckDepth int
	// SolveDelay inserts an artificial pause before each solve — a load-
	// testing and drain-rehearsal knob (cancellable by the job's context).
	SolveDelay time.Duration
	// DIMACSLimits / SMTLIBLimits bound problem parsing; zero fields take
	// the parser packages' defaults. MaxBodyBytes already caps total size.
	DIMACSLimits dimacs.Limits
	SMTLIBLimits smtlib.Limits
	// SolveFunc overrides how admitted jobs are decided (nil = engine).
	SolveFunc SolveFunc
	// AllowExchange permits requests carrying exchange_url — worker mode:
	// the engine of such a solve dials the named lemma relay and shares
	// theory lemmas with its cube siblings. Off by default: a solve
	// parameter that makes the server open outbound connections to an
	// arbitrary URL is an SSRF vector on a public instance, so only
	// deployments that opt in (absolverd -worker) honour it.
	AllowExchange bool
	// ExchangePollInterval throttles a worker engine's relay import polls
	// (0 = the exchange package default).
	ExchangePollInterval time.Duration
	// ClusterMetrics, when set, is rendered into /metrics as the
	// absolverd_cluster_* series (coordinator deployments).
	ClusterMetrics *ClusterMetrics
	// Logf, when set, receives one line per completed job and per
	// lifecycle transition.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 5 * time.Minute
	}
	if c.MaxPortfolio <= 0 {
		c.MaxPortfolio = 8
	}
	if c.CacheSize == 0 {
		c.CacheSize = 256
	}
	if c.MaxBatchInstances <= 0 {
		c.MaxBatchInstances = 1000
	}
	if c.MaxCheckDepth <= 0 {
		c.MaxCheckDepth = 64
	}
	return c
}

// job is one admitted solve travelling from handler to worker and back.
type job struct {
	ctx      context.Context
	problem  *core.Problem
	params   api.SolveParams
	admitted time.Time
	// events carries trace events to the streaming handler (nil for
	// plain requests); the worker closes it when the solve returns.
	events chan core.Event
	// done closes after outcome/err are set and events is closed.
	done    chan struct{}
	outcome Outcome
	err     error
	// batch, when set, makes the worker run a whole session batch instead
	// of one solve; outcome/err stay zero and events stays nil.
	batch *batchJob
	// check, when set, makes the worker run a model-checking job instead;
	// outcome/err stay zero and events stays nil.
	check *checkJob
}

// Server owns the queue, the worker pool, and the HTTP handlers. Create
// with New, call Start, serve Handler, stop with Shutdown.
type Server struct {
	cfg     Config
	metrics *metrics
	mux     *http.ServeMux
	queue   chan *job
	cache   *verdictCache // nil when Config.CacheSize < 0

	mu       sync.Mutex // guards draining and the admit-vs-shutdown race
	draining bool
	started  bool

	jobs     sync.WaitGroup // admitted, not yet finished
	workerWG sync.WaitGroup
	busy     atomic.Int64
}

// New builds a server; Start must be called before it accepts jobs.
func New(cfg Config) *Server {
	s := &Server{
		cfg:     cfg.withDefaults(),
		metrics: newMetrics(),
		mux:     http.NewServeMux(),
	}
	s.queue = make(chan *job, s.cfg.QueueDepth)
	if s.cfg.CacheSize > 0 {
		s.cache = newVerdictCache(s.cfg.CacheSize)
	}
	s.mux.HandleFunc("/v1/solve", s.handleSolve)
	s.mux.HandleFunc("/v1/batch", s.handleBatch)
	s.mux.HandleFunc("/v1/check", s.handleCheck)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	return s
}

// Handler returns the HTTP handler serving /v1/solve, /metrics, /healthz,
// and /readyz.
func (s *Server) Handler() http.Handler { return s.mux }

// Start launches the worker pool.
func (s *Server) Start() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		return
	}
	s.started = true
	s.workerWG.Add(s.cfg.Workers)
	for i := 0; i < s.cfg.Workers; i++ {
		go s.worker()
	}
	s.logf("absolverd: %d workers, queue depth %d", s.cfg.Workers, s.cfg.QueueDepth)
}

// ErrAlreadyShutdown reports a second Shutdown call.
var ErrAlreadyShutdown = errors.New("server: already shutting down")

// Shutdown makes the server stop admitting (new solves get 503), waits for
// every admitted job to finish, then stops the workers. If ctx expires
// first the error is returned and jobs keep draining in the background;
// admitted work is never cancelled by shutdown itself.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.started || s.draining {
		s.mu.Unlock()
		return ErrAlreadyShutdown
	}
	s.draining = true
	s.mu.Unlock()
	s.logf("absolverd: draining")

	done := make(chan struct{})
	go func() {
		s.jobs.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		return ctx.Err()
	}
	close(s.queue)
	s.workerWG.Wait()
	s.logf("absolverd: drained")
	return nil
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// ---------------------------------------------------------------------------
// Worker pool.

func (s *Server) worker() {
	defer s.workerWG.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

// retryAfterHint estimates how long a bounced client should wait before
// retrying, as a Retry-After header value in seconds. A full queue hints
// roughly the backlog per worker — each queued-or-running job is about one
// solve the client is behind — clamped to [1, 30] so a deep backlog never
// tells clients to go away for minutes. A draining server hints a flat 5:
// the process is going away, and the retry should land on its replacement
// rather than hot-poll the corpse.
func (s *Server) retryAfterHint(draining bool) string {
	if draining {
		return "5"
	}
	workers := s.cfg.Workers
	if workers < 1 {
		workers = 1
	}
	secs := 1 + (len(s.queue)+int(s.busy.Load()))/workers
	if secs > 30 {
		secs = 30
	}
	return strconv.Itoa(secs)
}

func (s *Server) runJob(j *job) {
	defer s.jobs.Done()
	s.busy.Add(1)
	defer s.busy.Add(-1)
	wait := time.Since(j.admitted)

	if d := s.cfg.SolveDelay; d > 0 {
		select {
		case <-time.After(d):
		case <-j.ctx.Done():
		}
	}

	if j.batch != nil {
		start := time.Now()
		s.runBatch(j, wait)
		close(j.done)
		s.logf("absolverd: batch done instances=%d wait=%v run=%v",
			len(j.batch.instances), wait, time.Since(start))
		return
	}

	if j.check != nil {
		start := time.Now()
		s.runCheckJob(j, wait)
		close(j.done)
		s.logf("absolverd: check done k=%d wait=%v run=%v",
			j.check.params.K, wait, time.Since(start))
		return
	}

	var trace core.TraceFunc
	if j.events != nil {
		events, ctx := j.events, j.ctx
		// Blocking send gives the stream natural backpressure; the job
		// context unblocks it when the client goes away or the deadline
		// fires, so a dead reader can never wedge a worker.
		trace = func(ev core.Event) {
			select {
			case events <- ev:
			case <-ctx.Done():
			}
		}
	}

	start := time.Now()
	j.outcome, j.err = s.solve(j.ctx, j.problem, j.params, trace)
	if j.events != nil {
		close(j.events)
	}
	close(j.done)

	verdict := classify(j.outcome.Result.Status, j.err)
	s.metrics.jobDone(verdict, j.outcome.Result.Stats, wait)
	s.logf("absolverd: job done verdict=%s wait=%v solve=%v", verdict, wait, time.Since(start))
}

// classify buckets a finished job for the solves_total counter.
func classify(status core.Status, err error) string {
	switch {
	case err == nil, errors.Is(err, core.ErrTimeout),
		errors.Is(err, context.DeadlineExceeded),
		errors.Is(err, core.ErrIterationLimit):
		switch status {
		case core.StatusSat:
			return verdictSat
		case core.StatusUnsat:
			return verdictUnsat
		}
		return verdictUnknown
	case errors.Is(err, context.Canceled):
		return verdictCanceled
	default:
		return verdictError
	}
}

// solve runs the configured SolveFunc, defaulting to the engine.
func (s *Server) solve(ctx context.Context, p *core.Problem, params api.SolveParams, trace core.TraceFunc) (Outcome, error) {
	if s.cfg.SolveFunc != nil {
		return s.cfg.SolveFunc(ctx, p, params, trace)
	}
	base := core.Config{
		RestartBoolean: params.Restart,
		NoIIS:          params.NoIIS,
		NoGroundLemmas: params.NoLemmas,
		NoTheoryCache:  params.NoCache,
		NoPolyAR:       params.NoPolyAR,
		CheckModels:    params.CheckModels,
	}
	if params.Portfolio > 0 {
		strategies := portfolio.DefaultStrategies(params.Portfolio)
		// Knobs OR-compose onto every strategy's own configuration, as in
		// the stand-alone tool: a strategy defined by a restriction keeps
		// it even when the request doesn't ask for that restriction.
		for i := range strategies {
			c := &strategies[i].Config
			c.RestartBoolean = c.RestartBoolean || base.RestartBoolean
			c.NoIIS = c.NoIIS || base.NoIIS
			c.NoGroundLemmas = c.NoGroundLemmas || base.NoGroundLemmas
			c.NoTheoryCache = c.NoTheoryCache || base.NoTheoryCache
			c.NoPolyAR = c.NoPolyAR || base.NoPolyAR
			c.CheckModels = c.CheckModels || base.CheckModels
		}
		// N interleaved engine traces are not readable; streaming a
		// portfolio run emits only the final result event.
		out := portfolio.SolveWith(ctx, p, strategies, portfolio.Options{NoShare: params.NoShare})
		res := out.Result
		res.Stats = out.Stats // total work across members
		return Outcome{Result: res, Winner: out.Winner}, out.Err
	}
	base.Trace = trace
	if params.ExchangeURL != "" && s.cfg.AllowExchange {
		// Worker mode: share theory lemmas with sibling cube solves through
		// the coordinator's relay. The trailing Flush pushes lemmas learned
		// just before this cube's verdict to peers still running.
		nc := exchange.NewNetClient(params.ExchangeURL, params.ExchangeNode,
			exchange.NetOptions{PollInterval: s.cfg.ExchangePollInterval})
		defer nc.Flush()
		base.Exchange = nc
	}
	res, err := core.NewEngine(p, base).SolveContext(ctx)
	return Outcome{Result: res}, err
}

// ---------------------------------------------------------------------------
// HTTP handlers.

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, exitCode int, format string, args ...any) {
	writeJSON(w, status, api.ErrorResponse{Error: fmt.Sprintf(format, args...), ExitCode: exitCode})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	ready := s.started && !s.draining
	s.mu.Unlock()
	if !ready {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ready")
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.metrics.write(w, gauges{
		queueDepth:    len(s.queue),
		queueCapacity: cap(s.queue),
		workers:       s.cfg.Workers,
		workersBusy:   int(s.busy.Load()),
		cluster:       s.cfg.ClusterMetrics,
	})
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, api.ExitUsage, "POST a problem body to /v1/solve")
		return
	}
	params, err := api.ParseParams(r.URL.Query())
	if err != nil {
		s.metrics.reject(rejectBadRequest)
		writeError(w, http.StatusBadRequest, api.ExitUsage, "bad parameters: %v", err)
		return
	}
	if params.Portfolio > s.cfg.MaxPortfolio {
		s.metrics.reject(rejectBadRequest)
		writeError(w, http.StatusBadRequest, api.ExitUsage,
			"portfolio %d exceeds the server maximum %d", params.Portfolio, s.cfg.MaxPortfolio)
		return
	}
	if params.ExchangeURL != "" && !s.cfg.AllowExchange {
		s.metrics.reject(rejectBadRequest)
		writeError(w, http.StatusBadRequest, api.ExitUsage,
			"exchange_url requires a worker-mode server (absolverd -worker)")
		return
	}

	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	var problem *core.Problem
	switch params.Format {
	case api.FormatSMTLIB:
		b, perr := smtlib.ParseReader(body, s.cfg.SMTLIBLimits)
		if perr == nil {
			problem = b.ToProblem()
		} else {
			err = perr
		}
	default:
		problem, err = dimacs.ParseLimited(body, s.cfg.DIMACSLimits)
	}
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) || errors.Is(err, dimacs.ErrInputTooLarge) || errors.Is(err, smtlib.ErrInputTooLarge) {
			s.metrics.reject(rejectBodyTooLarge)
			writeError(w, http.StatusRequestEntityTooLarge, api.ExitUsage, "problem body too large: %v", err)
			return
		}
		s.metrics.reject(rejectBadRequest)
		writeError(w, http.StatusBadRequest, api.ExitUsage, "parse error: %v", err)
		return
	}
	if err := problem.Validate(); err != nil {
		s.metrics.reject(rejectBadRequest)
		writeError(w, http.StatusBadRequest, api.ExitUsage, "invalid problem: %v", err)
		return
	}

	// Verdict cache: consulted before admission, so a hit costs no queue
	// slot and no worker. no_cache=1 bypasses it (alongside the engine's
	// own theory cache); streamed requests skip it — their value is the
	// trace, not the verdict.
	var cacheKey string
	if s.cache != nil && !params.Stream && !params.NoCache {
		cacheKey = canonicalProblemKey(problem)
		if ent, ok := s.cache.get(cacheKey); ok {
			certified := true
			if params.CheckModels && ent.resp.Status == core.StatusSat.String() {
				// Re-certify the cached witness against THIS problem; a
				// stale or hash-colliding entry fails and is evicted.
				if ent.model == nil || core.CertifyModel(problem, *ent.model) != nil {
					certified = false
				}
			}
			if certified {
				s.metrics.cacheHit()
				writeJSON(w, http.StatusOK, ent.resp)
				return
			}
			s.cache.drop(cacheKey)
		}
		s.metrics.cacheMiss()
	}

	timeout := params.Timeout
	if timeout <= 0 {
		timeout = s.cfg.DefaultTimeout
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}
	// The deadline starts at admission: it covers queue wait plus solve,
	// and the request context ties the job to the client's connection —
	// a disconnect cancels the solve.
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	j := &job{
		ctx:      ctx,
		problem:  problem,
		params:   params,
		admitted: time.Now(),
		done:     make(chan struct{}),
	}
	if params.Stream {
		j.events = make(chan core.Event, 64)
	}

	// Admission: the mutex closes the race against Shutdown (no job is
	// admitted after draining is set), the non-blocking send implements
	// the bounded queue.
	s.mu.Lock()
	if !s.started || s.draining {
		s.mu.Unlock()
		s.metrics.reject(rejectDraining)
		w.Header().Set("Retry-After", s.retryAfterHint(true))
		writeError(w, http.StatusServiceUnavailable, api.ExitUnknown, "server is draining")
		return
	}
	select {
	case s.queue <- j:
		s.jobs.Add(1)
		s.mu.Unlock()
	default:
		s.mu.Unlock()
		s.metrics.reject(rejectQueueFull)
		w.Header().Set("Retry-After", s.retryAfterHint(false))
		writeError(w, http.StatusTooManyRequests, api.ExitUnknown,
			"queue full (%d workers busy, %d queued)", s.cfg.Workers, cap(s.queue))
		return
	}

	if params.Stream {
		s.streamResponse(w, j)
		return
	}
	<-j.done
	resp, errResp := buildResponse(j)
	if errResp != nil {
		writeJSON(w, http.StatusInternalServerError, errResp)
		return
	}
	// Only definitive, error-free outcomes enter the cache: unknown may be
	// deadline-relative and would poison later requests with laxer limits.
	if cacheKey != "" && j.err == nil {
		if st := j.outcome.Result.Status; st == core.StatusSat || st == core.StatusUnsat {
			s.cache.put(cacheKey, cacheEntry{resp: resp, model: j.outcome.Result.Model})
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// buildResponse renders a finished job; a nil error response means HTTP 200.
func buildResponse(j *job) (api.SolveResponse, *api.ErrorResponse) {
	return outcomeResponse(j.outcome, j.err)
}

// outcomeResponse renders one solve outcome — a whole /v1/solve job or a
// single batch instance — onto the wire types.
func outcomeResponse(out Outcome, err error) (api.SolveResponse, *api.ErrorResponse) {
	res := out.Result
	resp := api.SolveResponse{
		Status:   res.Status.String(),
		ExitCode: api.ExitCode(res.Status),
		Winner:   out.Winner,
		Stats:    api.StatsFrom(res.Stats),
	}
	if res.Status == core.StatusSat && res.Model != nil {
		resp.Model = api.ModelFrom(*res.Model)
	}
	switch {
	case err == nil:
	case errors.Is(err, core.ErrTimeout), errors.Is(err, context.DeadlineExceeded):
		resp.Reason = "timeout"
	case errors.Is(err, context.Canceled):
		resp.Reason = "canceled"
	case errors.Is(err, core.ErrIterationLimit):
		resp.Reason = err.Error()
	default:
		return resp, &api.ErrorResponse{Error: err.Error(), ExitCode: api.ExitInternal}
	}
	return resp, nil
}

// streamResponse forwards trace events as NDJSON lines while the solve
// runs, then appends the final result (or error) event. The admission
// outcome fixed the status code already: streaming bodies are always 200.
func (s *Server) streamResponse(w http.ResponseWriter, j *job) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	fl, _ := w.(http.Flusher)
	flush := func() {
		if fl != nil {
			fl.Flush()
		}
	}
	flush()

	enc := json.NewEncoder(w)
	clientGone := false
	for ev := range j.events {
		if clientGone {
			continue // keep draining so the worker's sends never park
		}
		if err := enc.Encode(api.TraceEvent(ev)); err != nil {
			clientGone = true
			continue
		}
		flush()
	}
	<-j.done
	if clientGone {
		return
	}
	resp, errResp := buildResponse(j)
	var final api.StreamEvent
	if errResp != nil {
		final = api.StreamEvent{Type: api.EventError, Error: errResp.Error}
	} else {
		final = api.StreamEvent{Type: api.EventResult, Result: &resp}
	}
	_ = enc.Encode(final)
	flush()
}
