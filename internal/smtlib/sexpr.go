// Package smtlib implements a parser for the subset of the SMT-LIB 1.2
// benchmark format (Ranise & Tinelli, 2006) needed to ingest the paper's
// Table 2 workload: (benchmark …) headers with :logic/:status/:extrafuns/
// :extrapreds/:formula attributes, quantifier-free formulas over linear
// real/integer arithmetic, and the usual Boolean connectives. Benchmarks
// are "converted automatically to ABSOLVER's input format" (Sec. 5.2):
// ToProblem lowers a parsed benchmark to a core.Problem via the circuit
// representation.
package smtlib

import (
	"fmt"
	"strings"
)

// SExpr is an s-expression: either an atom (Sym != "") or a list.
type SExpr struct {
	Sym  string
	List []*SExpr
}

// IsAtom reports whether e is an atom.
func (e *SExpr) IsAtom() bool { return e.Sym != "" }

// String renders the s-expression.
func (e *SExpr) String() string {
	if e.IsAtom() {
		return e.Sym
	}
	var sb strings.Builder
	sb.WriteByte('(')
	for i, c := range e.List {
		if i > 0 {
			sb.WriteByte(' ')
		}
		sb.WriteString(c.String())
	}
	sb.WriteByte(')')
	return sb.String()
}

// lexer splits SMT-LIB 1.2 text into tokens: parens, symbols, {…} user
// annotations (returned as single tokens), and ;-comments (skipped).
type lexer struct {
	src  string
	pos  int
	toks []string
}

func lex(src string) ([]string, error) {
	l := &lexer{src: src}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == ';':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '(' || c == ')':
			l.toks = append(l.toks, string(c))
			l.pos++
		case c == '{':
			depth := 0
			start := l.pos
			for l.pos < len(l.src) {
				switch l.src[l.pos] {
				case '{':
					depth++
				case '}':
					depth--
				}
				l.pos++
				if depth == 0 {
					break
				}
			}
			if depth != 0 {
				return nil, fmt.Errorf("smtlib: unterminated annotation at %d", start)
			}
			l.toks = append(l.toks, l.src[start:l.pos])
		case c == '"':
			start := l.pos
			l.pos++
			for l.pos < len(l.src) && l.src[l.pos] != '"' {
				l.pos++
			}
			if l.pos >= len(l.src) {
				return nil, fmt.Errorf("smtlib: unterminated string at %d", start)
			}
			l.pos++
			l.toks = append(l.toks, l.src[start:l.pos])
		default:
			start := l.pos
			for l.pos < len(l.src) && !isDelim(l.src[l.pos]) {
				l.pos++
			}
			l.toks = append(l.toks, l.src[start:l.pos])
		}
	}
	return l.toks, nil
}

func isDelim(c byte) bool {
	switch c {
	case ' ', '\t', '\n', '\r', '(', ')', ';', '{', '"':
		return true
	}
	return false
}

// parseSExpr parses one s-expression from toks starting at i, returning the
// expression and the next index. depth is the remaining nesting budget:
// it caps the parser's recursion (and thereby the recursion of every later
// walk over the tree) against adversarially deep input.
func parseSExpr(toks []string, i, depth int) (*SExpr, int, error) {
	if i >= len(toks) {
		return nil, i, fmt.Errorf("smtlib: unexpected end of input")
	}
	t := toks[i]
	switch t {
	case "(":
		if depth <= 0 {
			return nil, i, ErrTooDeep
		}
		i++
		e := &SExpr{}
		for {
			if i >= len(toks) {
				return nil, i, fmt.Errorf("smtlib: missing ')'")
			}
			if toks[i] == ")" {
				return e, i + 1, nil
			}
			child, ni, err := parseSExpr(toks, i, depth-1)
			if err != nil {
				return nil, ni, err
			}
			e.List = append(e.List, child)
			i = ni
		}
	case ")":
		return nil, i, fmt.Errorf("smtlib: unexpected ')'")
	default:
		return &SExpr{Sym: t}, i + 1, nil
	}
}
