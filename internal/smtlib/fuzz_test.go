package smtlib

import "testing"

// FuzzParse exercises the SMT-LIB 1.2 benchmark parser.
func FuzzParse(f *testing.F) {
	f.Add("(benchmark b :logic QF_LRA :extrafuns ((x Real)) :formula (> x 0))")
	f.Add("(benchmark b :extrapreds ((p)) :formula (flet ($a p) (and $a true)))")
	f.Fuzz(func(t *testing.T, src string) {
		b, err := Parse(src)
		if err != nil {
			return
		}
		// Parsed benchmarks must lower to structurally valid problems.
		if err := b.ToProblem().Validate(); err != nil {
			t.Fatalf("parsed benchmark lowers to invalid problem: %v\ninput: %q", err, src)
		}
	})
}
