package smtlib

import (
	"errors"
	"strings"
	"testing"
)

const limitsValidBenchmark = `(benchmark tiny
  :logic QF_LRA
  :extrafuns ((x Real))
  :formula (>= x 1)
)`

func TestParseReaderAcceptsValidInput(t *testing.T) {
	b, err := ParseReader(strings.NewReader(limitsValidBenchmark), Limits{})
	if err != nil {
		t.Fatalf("ParseReader: %v", err)
	}
	if b.Name != "tiny" || b.Formula == nil {
		t.Fatalf("bad benchmark: name=%q formula=%v", b.Name, b.Formula)
	}
}

func TestParseReaderOversizedInput(t *testing.T) {
	src := limitsValidBenchmark + strings.Repeat("; padding\n", 64)
	_, err := ParseReader(strings.NewReader(src), Limits{MaxBytes: 64})
	if !errors.Is(err, ErrInputTooLarge) {
		t.Fatalf("err = %v, want ErrInputTooLarge", err)
	}
	// Exactly at the cap is fine.
	if _, err := ParseReader(strings.NewReader(limitsValidBenchmark), Limits{MaxBytes: int64(len(limitsValidBenchmark))}); err != nil {
		t.Fatalf("input exactly at MaxBytes rejected: %v", err)
	}
}

func TestParseLimitedTooDeep(t *testing.T) {
	// (benchmark b :formula (not (not ... (>= x 1) ... )))
	depth := 64
	var sb strings.Builder
	sb.WriteString("(benchmark deep :logic QF_LRA :extrafuns ((x Real)) :formula ")
	sb.WriteString(strings.Repeat("(not ", depth))
	sb.WriteString("(>= x 1)")
	sb.WriteString(strings.Repeat(")", depth))
	sb.WriteString(")")
	if _, err := ParseLimited(sb.String(), Limits{MaxDepth: 16}); !errors.Is(err, ErrTooDeep) {
		t.Fatalf("err = %v, want ErrTooDeep", err)
	}
	// The same input parses under a budget that covers it.
	if _, err := ParseLimited(sb.String(), Limits{MaxDepth: depth + 8}); err != nil {
		t.Fatalf("depth within budget rejected: %v", err)
	}
}

func TestParseLimitedTooManyTokens(t *testing.T) {
	src := "(benchmark toks :logic QF_LRA :extrafuns ((x Real)) :formula (and " +
		strings.Repeat("(>= x 1) ", 64) + "))"
	if _, err := ParseLimited(src, Limits{MaxTokens: 32}); !errors.Is(err, ErrTooManyTokens) {
		t.Fatalf("err = %v, want ErrTooManyTokens", err)
	}
}

// TestParseReaderTruncatedAndGarbage: inputs cut mid-construct and binary
// noise must error, never panic or succeed.
func TestParseReaderTruncatedAndGarbage(t *testing.T) {
	cases := []string{
		"(benchmark tiny :logic QF_LRA",                    // missing ')'
		"(benchmark tiny :formula (>= x",                   // formula cut open
		limitsValidBenchmark[:len(limitsValidBenchmark)/2], // arbitrary prefix
		"\x00\x01\xfe\xff not smtlib",
		")",
		"(benchmark)",
	}
	for _, src := range cases {
		b, err := ParseReader(strings.NewReader(src), Limits{})
		if err == nil {
			t.Errorf("%q: parsed without error (%v)", src, b.Name)
		}
	}
}
