package smtlib

import (
	"errors"
	"io"
)

// Default resource caps for ParseReader / ParseLimited. Generous for the
// paper's workloads (the largest Fischer instance is well under a MiB),
// tight enough that a hostile network body cannot drive unbounded token
// allocation or recursion.
const (
	DefaultMaxBytes  = 64 << 20 // 64 MiB of benchmark text
	DefaultMaxTokens = 1 << 22  // ~4M lexed tokens
	DefaultMaxDepth  = 2000     // s-expression nesting depth
)

// Typed parse-resource errors; match with errors.Is.
var (
	// ErrInputTooLarge reports that the input exceeded Limits.MaxBytes.
	ErrInputTooLarge = errors.New("smtlib: input exceeds byte limit")
	// ErrTooManyTokens reports that lexing produced more than
	// Limits.MaxTokens tokens.
	ErrTooManyTokens = errors.New("smtlib: token count exceeds limit")
	// ErrTooDeep reports s-expression nesting beyond Limits.MaxDepth. The
	// cap also bounds the recursion of the circuit translation, which walks
	// the same tree.
	ErrTooDeep = errors.New("smtlib: nesting exceeds depth limit")
)

// Limits bounds the resources a single parse may consume when reading
// untrusted input. A zero field selects the package default above.
type Limits struct {
	// MaxBytes caps the total input size in bytes.
	MaxBytes int64
	// MaxTokens caps the number of lexed tokens.
	MaxTokens int
	// MaxDepth caps s-expression nesting (and with it parser recursion).
	MaxDepth int
}

func (l Limits) withDefaults() Limits {
	if l.MaxBytes == 0 {
		l.MaxBytes = DefaultMaxBytes
	}
	if l.MaxTokens == 0 {
		l.MaxTokens = DefaultMaxTokens
	}
	if l.MaxDepth == 0 {
		l.MaxDepth = DefaultMaxDepth
	}
	return l
}

// ParseReader reads an SMT-LIB 1.2 benchmark from untrusted input under
// explicit resource caps (zero fields select the package defaults).
// Exceeding a cap returns an error matching ErrInputTooLarge,
// ErrTooManyTokens, or ErrTooDeep via errors.Is.
func ParseReader(r io.Reader, lim Limits) (*Benchmark, error) {
	lim = lim.withDefaults()
	// One byte beyond the cap distinguishes "exactly at the limit" from
	// "over it".
	lr := &io.LimitedReader{R: r, N: lim.MaxBytes + 1}
	data, err := io.ReadAll(lr)
	if err != nil {
		return nil, err
	}
	if lr.N <= 0 {
		return nil, ErrInputTooLarge
	}
	return parseLimited(string(data), lim)
}

// ParseLimited is Parse under explicit resource caps.
func ParseLimited(src string, lim Limits) (*Benchmark, error) {
	lim = lim.withDefaults()
	if int64(len(src)) > lim.MaxBytes {
		return nil, ErrInputTooLarge
	}
	return parseLimited(src, lim)
}
