package smtlib

import (
	"strings"
	"testing"

	"absolver/internal/core"
)

func parseT(t *testing.T, src string) *Benchmark {
	t.Helper()
	b, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v\n%s", err, src)
	}
	return b
}

func solveT(t *testing.T, b *Benchmark) core.Status {
	t.Helper()
	p := b.ToProblem()
	res, err := core.NewEngine(p, core.Config{}).Solve()
	if err != nil {
		t.Fatal(err)
	}
	if res.Status == core.StatusSat {
		if err := p.Check(*res.Model); err != nil {
			t.Fatalf("model check: %v", err)
		}
	}
	return res.Status
}

func TestParseMinimal(t *testing.T) {
	b := parseT(t, `(benchmark tiny
  :logic QF_LRA
  :status sat
  :extrafuns ((x Real) (y Real))
  :formula (and (<= x 3) (>= (+ x y) 5))
)`)
	if b.Name != "tiny" || b.Logic != "QF_LRA" || b.Status != "sat" {
		t.Fatalf("header: %+v", b)
	}
	if len(b.Formula.Atoms()) != 2 {
		t.Fatalf("atoms = %d", len(b.Formula.Atoms()))
	}
	if got := solveT(t, b); got != core.StatusSat {
		t.Fatalf("status = %v", got)
	}
}

func TestParseUnsatBenchmark(t *testing.T) {
	b := parseT(t, `(benchmark contradiction
  :logic QF_LRA
  :status unsat
  :extrafuns ((x Real))
  :formula (and (< x 0) (> x 1))
)`)
	if got := solveT(t, b); got != core.StatusUnsat {
		t.Fatalf("status = %v", got)
	}
}

func TestPropositionalConnectives(t *testing.T) {
	b := parseT(t, `(benchmark props
  :logic QF_UF
  :extrapreds ((p) (q) (r))
  :formula (and (implies p q) (iff q r) (xor p r) (or p (not p)))
)`)
	// implies/iff/xor: p→q, q↔r, p⊕r. If p then q,r true → p⊕r false → p
	// must be false → r false via xor ⊕? p=F: xor needs r=T, iff q=r=T,
	// p→q fine. SAT.
	if got := solveT(t, b); got != core.StatusSat {
		t.Fatalf("status = %v", got)
	}
}

func TestIteAndDistinct(t *testing.T) {
	b := parseT(t, `(benchmark itedist
  :logic QF_LRA
  :extrapreds ((c))
  :extrafuns ((x Real) (y Real))
  :formula (and (if_then_else c (< x 0) (> x 10)) (distinct x y) (= y 0) (> x 3))
)`)
	// distinct x y with y=0, x>3 ✓; ite forces ¬c branch x>10.
	if got := solveT(t, b); got != core.StatusSat {
		t.Fatalf("status = %v", got)
	}
}

func TestLetFlet(t *testing.T) {
	b := parseT(t, `(benchmark letflet
  :logic QF_LRA
  :extrafuns ((x Real))
  :formula (flet ($a (> x 2)) (let (?s (+ x 1)) (and $a (< ?s 5))))
)`)
	if got := solveT(t, b); got != core.StatusSat {
		t.Fatalf("status = %v", got)
	}
	b2 := parseT(t, `(benchmark letflet2
  :logic QF_LRA
  :extrafuns ((x Real))
  :formula (flet ($a (> x 6)) (let (?s (+ x 1)) (and $a (< ?s 5))))
)`)
	if got := solveT(t, b2); got != core.StatusUnsat {
		t.Fatalf("status = %v", got)
	}
}

func TestChainedComparison(t *testing.T) {
	b := parseT(t, `(benchmark chain
  :logic QF_LRA
  :extrafuns ((x Real) (y Real) (z Real))
  :formula (< x y z)
)`)
	if len(b.Formula.Atoms()) != 2 {
		t.Fatalf("chained < should give 2 atoms, got %d", len(b.Formula.Atoms()))
	}
	if got := solveT(t, b); got != core.StatusSat {
		t.Fatalf("status = %v", got)
	}
}

func TestIntSortYieldsIntDomain(t *testing.T) {
	b := parseT(t, `(benchmark ints
  :logic QF_LIA
  :extrafuns ((i Int))
  :formula (and (> i 2) (< i 3))
)`)
	// No integer between 2 and 3.
	p := b.ToProblem()
	p.SetBounds("i", -1000, 1000)
	res, err := core.NewEngine(p, core.Config{}).Solve()
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != core.StatusUnsat {
		t.Fatalf("status = %v (integer gap must be unsat)", res.Status)
	}
}

func TestNegativeNumeralTilde(t *testing.T) {
	b := parseT(t, `(benchmark neg
  :logic QF_LRA
  :extrafuns ((x Real))
  :formula (and (>= x (~ 5)) (<= x (~ 3)))
)`)
	if got := solveT(t, b); got != core.StatusSat {
		t.Fatalf("status = %v", got)
	}
}

func TestAnnotationsAndComments(t *testing.T) {
	b := parseT(t, `; leading comment
(benchmark annotated
  :source { produced by hand
            over two lines }
  :logic QF_LRA
  :category { industrial }
  :extrafuns ((x Real))
  :formula (> x 0) ; trailing comment
)`)
	if b.Name != "annotated" {
		t.Fatalf("name = %q", b.Name)
	}
}

func TestAtomSharing(t *testing.T) {
	b := parseT(t, `(benchmark shared
  :logic QF_LRA
  :extrafuns ((x Real))
  :formula (and (or (> x 0) (< x 10)) (or (> x 0) (> x 5)))
)`)
	// (> x 0) occurs twice but must be one atom.
	if got := len(b.Formula.Atoms()); got != 3 {
		t.Fatalf("atoms = %d, want 3", got)
	}
	p := b.ToProblem()
	if len(p.Bindings) != 3 {
		t.Fatalf("bindings = %d, want 3", len(p.Bindings))
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"(foo bar :formula true)",
		"(benchmark x :formula)",
		"(benchmark x :formula (and (p q)))",
		"(benchmark x :extrafuns ((v Bool)) :formula true)",
		"(benchmark x :formula (< a b))", // undeclared terms
		"(benchmark x :formula (>= 1))",  // arity
		"(benchmark x :formula true) trailing",
		"(benchmark x :formula (let (?y) true))",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Fatalf("accepted %q", src)
		}
	}
}

func TestMultipleAssumptions(t *testing.T) {
	b := parseT(t, `(benchmark multi
  :logic QF_LRA
  :extrafuns ((x Real))
  :assumption (> x 0)
  :assumption (< x 10)
  :formula (> x 5)
)`)
	if got := solveT(t, b); got != core.StatusSat {
		t.Fatalf("status = %v", got)
	}
	if !strings.Contains(b.Formula.String(), "∧") {
		t.Fatal("assumptions not conjoined")
	}
}
