package smtlib

import (
	"math/rand"
	"strings"
	"testing"
)

// TestParserNeverPanics: random s-expression-ish soup must never panic.
func TestParserNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	alphabet := "()benchmark :logic formula extrafuns Real and or not < >= x y 0123 {} \" \n~"
	for iter := 0; iter < 2000; iter++ {
		n := rng.Intn(160)
		var sb strings.Builder
		for i := 0; i < n; i++ {
			sb.WriteByte(alphabet[rng.Intn(len(alphabet))])
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on input %q: %v", sb.String(), r)
				}
			}()
			_, _ = Parse(sb.String())
		}()
	}
}

// TestParserNeverPanicsStructured mutates a valid benchmark.
func TestParserNeverPanicsStructured(t *testing.T) {
	base := `(benchmark b
  :logic QF_LRA
  :status sat
  :extrafuns ((x Real) (i Int))
  :extrapreds ((p))
  :assumption (>= x (~ 5))
  :formula (and p (or (< x 2) (not (= i 3))) (if_then_else p (> x 0) (< x 0)))
)`
	rng := rand.New(rand.NewSource(32))
	for iter := 0; iter < 2000; iter++ {
		b := []byte(base)
		for k := 0; k < 1+rng.Intn(5); k++ {
			switch rng.Intn(3) {
			case 0:
				b[rng.Intn(len(b))] = byte(32 + rng.Intn(95))
			case 1:
				i := rng.Intn(len(b))
				b = append(b[:i], b[i+1:]...)
			case 2:
				i := rng.Intn(len(b))
				b = append(b[:i], append([]byte{byte("()x1 "[rng.Intn(5)])}, b[i:]...)...)
			}
			if len(b) == 0 {
				b = []byte("(")
			}
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on mutated input %q: %v", string(b), r)
				}
			}()
			_, _ = Parse(string(b))
		}()
	}
}
