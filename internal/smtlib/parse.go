package smtlib

import (
	"fmt"
	"strconv"
	"strings"

	"absolver/internal/circuit"
	"absolver/internal/core"
	"absolver/internal/expr"
)

// Sort is an SMT-LIB arithmetic sort.
type Sort int

// Sorts.
const (
	SortReal Sort = iota
	SortInt
)

// Benchmark is a parsed SMT-LIB 1.2 benchmark.
type Benchmark struct {
	Name   string
	Logic  string
	Status string // "sat", "unsat" or "unknown" as annotated
	Funs   map[string]Sort
	Preds  map[string]bool
	// Formula is the conjunction of all :assumption and :formula
	// attributes, as a circuit.
	Formula *circuit.Circuit
}

// Parse reads an SMT-LIB 1.2 benchmark file. It is ParseLimited under the
// package's default (generous) resource caps; use ParseReader /
// ParseLimited with explicit Limits for untrusted network input.
func Parse(src string) (*Benchmark, error) {
	return ParseLimited(src, Limits{})
}

func parseLimited(src string, lim Limits) (*Benchmark, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	if len(toks) > lim.MaxTokens {
		return nil, fmt.Errorf("smtlib: %d tokens: %w", len(toks), ErrTooManyTokens)
	}
	e, next, err := parseSExpr(toks, 0, lim.MaxDepth)
	if err != nil {
		return nil, err
	}
	if next != len(toks) {
		return nil, fmt.Errorf("smtlib: trailing tokens after benchmark")
	}
	if e.IsAtom() || len(e.List) < 2 || e.List[0].Sym != "benchmark" {
		return nil, fmt.Errorf("smtlib: not a benchmark s-expression")
	}
	b := &Benchmark{
		Name:   e.List[1].Sym,
		Status: "unknown",
		Funs:   map[string]Sort{},
		Preds:  map[string]bool{},
	}
	var formulas []*SExpr
	i := 2
	for i < len(e.List) {
		item := e.List[i]
		if !item.IsAtom() || !strings.HasPrefix(item.Sym, ":") {
			return nil, fmt.Errorf("smtlib: expected attribute, got %s", item)
		}
		attr := item.Sym
		i++
		switch attr {
		case ":logic", ":status", ":source", ":category", ":difficulty", ":notes":
			if i >= len(e.List) {
				return nil, fmt.Errorf("smtlib: missing value for %s", attr)
			}
			val := e.List[i]
			i++
			switch attr {
			case ":logic":
				b.Logic = val.Sym
			case ":status":
				b.Status = val.Sym
			}
		case ":extrafuns":
			if i >= len(e.List) {
				return nil, fmt.Errorf("smtlib: missing value for :extrafuns")
			}
			for _, d := range e.List[i].List {
				if d.IsAtom() || len(d.List) != 2 {
					return nil, fmt.Errorf("smtlib: bad fun declaration %s", d)
				}
				name := d.List[0].Sym
				switch d.List[1].Sym {
				case "Real":
					b.Funs[name] = SortReal
				case "Int":
					b.Funs[name] = SortInt
				default:
					return nil, fmt.Errorf("smtlib: unsupported sort %s", d.List[1].Sym)
				}
			}
			i++
		case ":extrapreds":
			if i >= len(e.List) {
				return nil, fmt.Errorf("smtlib: missing value for :extrapreds")
			}
			for _, d := range e.List[i].List {
				if d.IsAtom() {
					b.Preds[d.Sym] = true
				} else if len(d.List) == 1 {
					b.Preds[d.List[0].Sym] = true
				} else {
					return nil, fmt.Errorf("smtlib: only nullary predicates supported: %s", d)
				}
			}
			i++
		case ":assumption", ":formula":
			if i >= len(e.List) {
				return nil, fmt.Errorf("smtlib: missing value for %s", attr)
			}
			formulas = append(formulas, e.List[i])
			i++
		default:
			// Unknown attribute: skip its value if present.
			if i < len(e.List) && !(e.List[i].IsAtom() && strings.HasPrefix(e.List[i].Sym, ":")) {
				i++
			}
		}
	}
	if len(formulas) == 0 {
		return nil, fmt.Errorf("smtlib: benchmark has no :formula")
	}
	conv := &converter{
		b:         b,
		lets:      map[string]expr.Expr{},
		flets:     map[string]*circuit.Gate{},
		atomCache: map[string]*circuit.Gate{},
	}
	gates := make([]*circuit.Gate, len(formulas))
	for j, f := range formulas {
		g, err := conv.formula(f)
		if err != nil {
			return nil, err
		}
		gates[j] = g
	}
	if len(gates) == 1 {
		b.Formula = circuit.New(gates[0])
	} else {
		b.Formula = circuit.New(circuit.And(gates...))
	}
	return b, nil
}

// ToProblem lowers the benchmark to an AB problem (automatic conversion to
// ABsolver's input format, Sec. 5.2).
func (b *Benchmark) ToProblem() *core.Problem {
	return core.FromCircuit(b.Formula)
}

// converter tracks let/flet scopes during formula conversion. atomCache
// shares one gate (hence one CNF variable) among syntactically identical
// atoms — without it every occurrence of a repeated comparison would get
// its own Boolean variable after Tseitin conversion.
type converter struct {
	b         *Benchmark
	lets      map[string]expr.Expr
	flets     map[string]*circuit.Gate
	atomCache map[string]*circuit.Gate
}

var cmpOps = map[string]expr.CmpOp{
	"<": expr.CmpLT, ">": expr.CmpGT, "<=": expr.CmpLE, ">=": expr.CmpGE, "=": expr.CmpEQ,
}

// formula converts an s-expression into a circuit gate.
func (c *converter) formula(e *SExpr) (*circuit.Gate, error) {
	if e.IsAtom() {
		switch e.Sym {
		case "true":
			return circuit.Const(true), nil
		case "false":
			return circuit.Const(false), nil
		}
		if g, ok := c.flets[e.Sym]; ok {
			return g, nil
		}
		if c.b.Preds[e.Sym] || strings.HasPrefix(e.Sym, "$") {
			return circuit.Input(e.Sym), nil
		}
		return nil, fmt.Errorf("smtlib: unknown proposition %q", e.Sym)
	}
	if len(e.List) == 0 {
		return nil, fmt.Errorf("smtlib: empty formula")
	}
	head := e.List[0].Sym
	args := e.List[1:]
	switch head {
	case "and", "or":
		gs := make([]*circuit.Gate, len(args))
		for i, a := range args {
			g, err := c.formula(a)
			if err != nil {
				return nil, err
			}
			gs[i] = g
		}
		if head == "and" {
			return circuit.And(gs...), nil
		}
		return circuit.Or(gs...), nil
	case "not":
		if len(args) != 1 {
			return nil, fmt.Errorf("smtlib: not takes one argument")
		}
		g, err := c.formula(args[0])
		if err != nil {
			return nil, err
		}
		return circuit.Not(g), nil
	case "implies", "=>":
		if len(args) != 2 {
			return nil, fmt.Errorf("smtlib: implies takes two arguments")
		}
		a, err := c.formula(args[0])
		if err != nil {
			return nil, err
		}
		b, err := c.formula(args[1])
		if err != nil {
			return nil, err
		}
		return circuit.Implies(a, b), nil
	case "iff":
		if len(args) != 2 {
			return nil, fmt.Errorf("smtlib: iff takes two arguments")
		}
		a, err := c.formula(args[0])
		if err != nil {
			return nil, err
		}
		b, err := c.formula(args[1])
		if err != nil {
			return nil, err
		}
		return circuit.Not(circuit.Xor(a, b)), nil
	case "xor":
		if len(args) != 2 {
			return nil, fmt.Errorf("smtlib: xor takes two arguments")
		}
		a, err := c.formula(args[0])
		if err != nil {
			return nil, err
		}
		b, err := c.formula(args[1])
		if err != nil {
			return nil, err
		}
		return circuit.Xor(a, b), nil
	case "if_then_else", "ite":
		if len(args) != 3 {
			return nil, fmt.Errorf("smtlib: if_then_else takes three arguments")
		}
		cnd, err := c.formula(args[0])
		if err != nil {
			return nil, err
		}
		th, err := c.formula(args[1])
		if err != nil {
			return nil, err
		}
		el, err := c.formula(args[2])
		if err != nil {
			return nil, err
		}
		return circuit.Ite(cnd, th, el), nil
	case "let":
		// (let (?x term) body)
		if len(args) != 2 || args[0].IsAtom() || len(args[0].List) != 2 {
			return nil, fmt.Errorf("smtlib: malformed let")
		}
		name := args[0].List[0].Sym
		t, err := c.term(args[0].List[1])
		if err != nil {
			return nil, err
		}
		old, had := c.lets[name]
		c.lets[name] = t
		g, err := c.formula(args[1])
		if had {
			c.lets[name] = old
		} else {
			delete(c.lets, name)
		}
		return g, err
	case "flet":
		// (flet ($p formula) body)
		if len(args) != 2 || args[0].IsAtom() || len(args[0].List) != 2 {
			return nil, fmt.Errorf("smtlib: malformed flet")
		}
		name := args[0].List[0].Sym
		f, err := c.formula(args[0].List[1])
		if err != nil {
			return nil, err
		}
		old, had := c.flets[name]
		c.flets[name] = f
		g, err := c.formula(args[1])
		if had {
			c.flets[name] = old
		} else {
			delete(c.flets, name)
		}
		return g, err
	case "distinct":
		if len(args) < 2 {
			return nil, fmt.Errorf("smtlib: distinct takes at least two arguments")
		}
		var gs []*circuit.Gate
		for i := 0; i < len(args); i++ {
			for j := i + 1; j < len(args); j++ {
				a, err := c.atom(expr.CmpNE, args[i], args[j])
				if err != nil {
					return nil, err
				}
				gs = append(gs, a)
			}
		}
		if len(gs) == 1 {
			return gs[0], nil
		}
		return circuit.And(gs...), nil
	case "<", ">", "<=", ">=":
		return c.chainCmp(cmpOps[head], args)
	case "=":
		// Equality over formulas is iff; over terms it is an atom. Decide
		// by attempting term conversion first.
		if len(args) < 2 {
			return nil, fmt.Errorf("smtlib: = takes at least two arguments")
		}
		if _, err := c.term(args[0]); err == nil {
			return c.chainCmp(expr.CmpEQ, args)
		}
		if len(args) != 2 {
			return nil, fmt.Errorf("smtlib: Boolean = takes two arguments")
		}
		a, err := c.formula(args[0])
		if err != nil {
			return nil, err
		}
		b, err := c.formula(args[1])
		if err != nil {
			return nil, err
		}
		return circuit.Not(circuit.Xor(a, b)), nil
	}
	return nil, fmt.Errorf("smtlib: unsupported connective %q", head)
}

// chainCmp converts (op t1 t2 … tn) into the conjunction of adjacent
// comparisons.
func (c *converter) chainCmp(op expr.CmpOp, args []*SExpr) (*circuit.Gate, error) {
	if len(args) < 2 {
		return nil, fmt.Errorf("smtlib: comparison needs two arguments")
	}
	var gs []*circuit.Gate
	for i := 0; i+1 < len(args); i++ {
		g, err := c.atom(op, args[i], args[i+1])
		if err != nil {
			return nil, err
		}
		gs = append(gs, g)
	}
	if len(gs) == 1 {
		return gs[0], nil
	}
	return circuit.And(gs...), nil
}

// atom builds a comparison atom gate from two term s-expressions.
func (c *converter) atom(op expr.CmpOp, l, r *SExpr) (*circuit.Gate, error) {
	lt, err := c.term(l)
	if err != nil {
		return nil, err
	}
	rt, err := c.term(r)
	if err != nil {
		return nil, err
	}
	dom := expr.Int
	for _, v := range expr.Vars(lt) {
		if c.b.Funs[v] != SortInt {
			dom = expr.Real
		}
	}
	for _, v := range expr.Vars(rt) {
		if c.b.Funs[v] != SortInt {
			dom = expr.Real
		}
	}
	a := expr.NewAtom(lt, op, rt, dom)
	key := a.String() + "#" + a.Domain.String()
	if g, ok := c.atomCache[key]; ok {
		return g, nil
	}
	g := circuit.AtomGate(a)
	c.atomCache[key] = g
	return g, nil
}

// term converts an s-expression into an arithmetic expression.
func (c *converter) term(e *SExpr) (expr.Expr, error) {
	if e.IsAtom() {
		s := e.Sym
		if t, ok := c.lets[s]; ok {
			return t, nil
		}
		if v, err := strconv.ParseFloat(s, 64); err == nil {
			return expr.C(v), nil
		}
		if _, ok := c.b.Funs[s]; ok || strings.HasPrefix(s, "?") {
			return expr.V(s), nil
		}
		return nil, fmt.Errorf("smtlib: unknown term %q", s)
	}
	if len(e.List) == 0 {
		return nil, fmt.Errorf("smtlib: empty term")
	}
	head := e.List[0].Sym
	args := e.List[1:]
	switch head {
	case "~":
		if len(args) != 1 {
			return nil, fmt.Errorf("smtlib: ~ takes one argument")
		}
		t, err := c.term(args[0])
		if err != nil {
			return nil, err
		}
		return expr.Neg{X: t}, nil
	case "+", "*":
		if len(args) < 1 {
			return nil, fmt.Errorf("smtlib: %s needs arguments", head)
		}
		t, err := c.term(args[0])
		if err != nil {
			return nil, err
		}
		for _, a := range args[1:] {
			u, err := c.term(a)
			if err != nil {
				return nil, err
			}
			if head == "+" {
				t = expr.Add(t, u)
			} else {
				t = expr.Mul(t, u)
			}
		}
		return t, nil
	case "-":
		if len(args) == 1 {
			t, err := c.term(args[0])
			if err != nil {
				return nil, err
			}
			return expr.Neg{X: t}, nil
		}
		if len(args) < 2 {
			return nil, fmt.Errorf("smtlib: - needs arguments")
		}
		t, err := c.term(args[0])
		if err != nil {
			return nil, err
		}
		for _, a := range args[1:] {
			u, err := c.term(a)
			if err != nil {
				return nil, err
			}
			t = expr.Sub(t, u)
		}
		return t, nil
	case "/":
		if len(args) != 2 {
			return nil, fmt.Errorf("smtlib: / takes two arguments")
		}
		l, err := c.term(args[0])
		if err != nil {
			return nil, err
		}
		r, err := c.term(args[1])
		if err != nil {
			return nil, err
		}
		return expr.Div(l, r), nil
	}
	return nil, fmt.Errorf("smtlib: unsupported term head %q", head)
}
