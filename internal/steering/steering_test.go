package steering

import (
	"testing"

	"absolver/internal/baseline"
	"absolver/internal/core"
	"absolver/internal/lustre"
)

func TestModelValidates(t *testing.T) {
	if err := Model().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestProblemDimensions(t *testing.T) {
	// The paper's Table 1 row: 976 clauses, 24 constraints — 4 linear,
	// 20 nonlinear. The synthetic substitute must match the constraint
	// split exactly and the clause count closely (±10%).
	p, err := Problem()
	if err != nil {
		t.Fatal(err)
	}
	cl, _, lin, nl := p.Counts()
	if lin != 4 || nl != 20 {
		t.Fatalf("constraints: %d linear, %d nonlinear; want 4/20", lin, nl)
	}
	if cl < 878 || cl > 1074 {
		t.Fatalf("clauses = %d, want within 10%% of 976", cl)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSensorBoundsAttached(t *testing.T) {
	p, err := Problem()
	if err != nil {
		t.Fatal(err)
	}
	for name, b := range SensorBounds() {
		iv, ok := p.Bounds[name]
		if !ok {
			t.Fatalf("missing bounds for %s", name)
		}
		if iv.Lo != b[0] || iv.Hi != b[1] {
			t.Fatalf("%s bounds = %v, want %v", name, iv, b)
		}
	}
}

func TestSolveCaseStudy(t *testing.T) {
	// The paper: "Computing a solution required less than a minute."
	p, err := Problem()
	if err != nil {
		t.Fatal(err)
	}
	eng := core.NewEngine(p, core.Config{})
	res, err := eng.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != core.StatusSat {
		t.Fatalf("status = %v (the critical scenario should be reachable)", res.Status)
	}
	if err := p.Check(*res.Model); err != nil {
		t.Fatal(err)
	}
	// Witness plausibility: the scenario requires motion and oversteer.
	v := (res.Model.Real["v1"] + res.Model.Real["v2"] + res.Model.Real["v3"] + res.Model.Real["v4"]) / 4
	if v < 5-1e-6 {
		t.Fatalf("witness vehicle speed %g below the moving threshold", v)
	}
}

func TestBaselinesRejectSteering(t *testing.T) {
	// Table 1: "both CVC Lite and MathSAT rejected the problems due to the
	// nonlinear arithmetic inequalities contained, e.g., in the
	// environment model of the car steering controller."
	p, err := Problem()
	if err != nil {
		t.Fatal(err)
	}
	ms := &baseline.MathSATLike{}
	if _, err := ms.Solve(p); err == nil {
		t.Fatal("MathSATLike accepted a nonlinear problem")
	}
	cv := &baseline.CVCLiteLike{}
	if _, err := cv.Solve(p); err == nil {
		t.Fatal("CVCLiteLike accepted a nonlinear problem")
	}
}

func TestLustreTextRoundTrips(t *testing.T) {
	prog, err := lustre.FromSimulink(Model())
	if err != nil {
		t.Fatal(err)
	}
	text := lustre.Format(prog)
	if _, err := lustre.Parse(text); err != nil {
		t.Fatalf("generated Lustre does not re-parse: %v", err)
	}
}

func TestWitnessConfirmedBySimulation(t *testing.T) {
	// The solver's critical-scenario witness must drive the actual block
	// diagram (classic simulation semantics) to CriticalScenario = true.
	p, err := Problem()
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.NewEngine(p, core.Config{}).Solve()
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != core.StatusSat {
		t.Fatalf("status = %v", res.Status)
	}
	stim := map[string]float64{}
	for name := range SensorBounds() {
		stim[name] = res.Model.Real[name]
	}
	sim, err := Model().Simulate(stim)
	if err != nil {
		t.Fatal(err)
	}
	if !sim.Bool["CriticalScenario"] {
		t.Fatalf("simulation contradicts the witness: %v", stim)
	}
}
