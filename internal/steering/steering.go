// Package steering reproduces the paper's industrial case study (Sec. 3):
// the safety analysis of a car's steering control system. The original
// MATLAB/Simulink model is IP-protected ("excluding the original car
// steering model due to obvious issues with the protection of intellectual
// property"); the paper publishes only its interface and dimensions, which
// this synthetic substitute matches:
//
//   - sensors: yaw rate (−7 ≤ x ≤ 7), lateral acceleration (−20 ≤ x ≤ 20),
//     four wheel-speed sensors (−400 ≤ x ≤ 400), steering angle (−1 ≤ x ≤ 1);
//   - problem dimensions: ≈976 CNF clauses and 24 arithmetic constraints,
//     4 linear and 20 nonlinear (Table 1, row "Car steering").
//
// The model couples a nonlinear single-track vehicle environment (products
// of speed, yaw rate and steering angle; slip by division) with a
// dual-channel monitoring controller: per-wheel plausibility checks, a
// 2-out-of-4 voter, channel agreement logic, a 16-row situation
// classification matrix, a pairwise diagnostic-coverage matrix and an
// escalation ladder. The verification question posed — exactly the class
// the paper describes — is the reachability of a *critical driving
// situation*: sensors plausible, the car demonstrably oversteering within
// its physical limits, and the commanded correction outside the actuator
// range. A SAT answer is a concrete test vector for the situation; UNSAT
// proves the controller's envelope covers it.
//
// The model is produced as a Simulink block diagram and analysed through
// the complete Fig. 3 tool-chain (Simulink → Lustre → AB problem).
package steering

import (
	"fmt"

	"absolver/internal/core"
	"absolver/internal/expr"
	"absolver/internal/lustre"
	"absolver/internal/simulink"
)

// Wheelbase of the synthetic vehicle (m).
const Wheelbase = 2.7

// Model builds the steering-control block diagram.
func Model() *simulink.Model {
	m := simulink.NewModel("steering")
	add := func(b *simulink.Block) string { m.Add(b); return b.Name }
	con := m.Connect

	// --- Sensor inports (ranges are attached by Problem()). -----------
	for _, n := range []string{"yaw", "lat", "v1", "v2", "v3", "v4", "delta"} {
		add(&simulink.Block{Name: n, Type: simulink.Inport})
	}

	// --- Environment arithmetic (nonlinear vehicle model). ------------
	// vavg = (v1+v2+v3+v4)/4
	add(&simulink.Block{Name: "vsum", Type: simulink.Sum, Signs: "++++"})
	con("v1", "vsum", 1)
	con("v2", "vsum", 2)
	con("v3", "vsum", 3)
	con("v4", "vsum", 4)
	add(&simulink.Block{Name: "vavg", Type: simulink.Gain, Value: 0.25})
	con("vsum", "vavg", 1)
	// vsq = vavg²
	add(&simulink.Block{Name: "vsq", Type: simulink.Product})
	con("vavg", "vsq", 1)
	con("vavg", "vsq", 2)
	// ayp = yaw·vavg (predicted lateral acceleration)
	add(&simulink.Block{Name: "ayp", Type: simulink.Product})
	con("yaw", "ayp", 1)
	con("vavg", "ayp", 2)
	// curvL = Wheelbase·yaw/vavg (geometric steering demand)
	add(&simulink.Block{Name: "yawL", Type: simulink.Gain, Value: Wheelbase})
	con("yaw", "yawL", 1)
	add(&simulink.Block{Name: "curvL", Type: simulink.Divide})
	con("yawL", "curvL", 1)
	con("vavg", "curvL", 2)
	// slip = delta − curvL (side-slip indicator)
	add(&simulink.Block{Name: "slip", Type: simulink.Sum, Signs: "+-"})
	con("delta", "slip", 1)
	con("curvL", "slip", 2)
	// margin = slip·vsq (dynamic stability margin)
	add(&simulink.Block{Name: "margin", Type: simulink.Product})
	con("slip", "margin", 1)
	con("vsq", "margin", 2)
	// dsl = delta·vsq (dynamic steering load)
	add(&simulink.Block{Name: "dsl", Type: simulink.Product})
	con("delta", "dsl", 1)
	con("vsq", "dsl", 2)
	// yawAy = yaw·lat ; yy = yaw·yaw·vsq ; aysq = lat·lat
	add(&simulink.Block{Name: "yawAy", Type: simulink.Product})
	con("yaw", "yawAy", 1)
	con("lat", "yawAy", 2)
	add(&simulink.Block{Name: "yawSq", Type: simulink.Product})
	con("yaw", "yawSq", 1)
	con("yaw", "yawSq", 2)
	add(&simulink.Block{Name: "yy", Type: simulink.Product})
	con("yawSq", "yy", 1)
	con("vsq", "yy", 2)
	add(&simulink.Block{Name: "aysq", Type: simulink.Product})
	con("lat", "aysq", 1)
	con("lat", "aysq", 2)
	// steer coupling: sc = vavg·delta − 1.5·yaw
	add(&simulink.Block{Name: "vd", Type: simulink.Product})
	con("vavg", "vd", 1)
	con("delta", "vd", 2)
	add(&simulink.Block{Name: "yaw15", Type: simulink.Gain, Value: 1.5})
	con("yaw", "yaw15", 1)
	add(&simulink.Block{Name: "sc", Type: simulink.Sum, Signs: "+-"})
	con("vd", "sc", 1)
	con("yaw15", "sc", 2)
	// dirCons = delta·yaw ; counter = delta·lat
	add(&simulink.Block{Name: "dirCons", Type: simulink.Product})
	con("delta", "dirCons", 1)
	con("yaw", "dirCons", 2)
	add(&simulink.Block{Name: "counter", Type: simulink.Product})
	con("delta", "counter", 1)
	con("lat", "counter", 2)
	// per-wheel deviation squares: wdev_i = (v_i − vavg)²
	for i := 1; i <= 4; i++ {
		d := fmt.Sprintf("wd%d", i)
		add(&simulink.Block{Name: d, Type: simulink.Sum, Signs: "+-"})
		con(fmt.Sprintf("v%d", i), d, 1)
		con("vavg", d, 2)
		sq := fmt.Sprintf("wdev%d", i)
		add(&simulink.Block{Name: sq, Type: simulink.Product})
		con(d, sq, 1)
		con(d, sq, 2)
	}
	// wheel tolerance: wtol = 0.01·vsq + 1
	add(&simulink.Block{Name: "vsq001", Type: simulink.Gain, Value: 0.01})
	con("vsq", "vsq001", 1)
	add(&simulink.Block{Name: "c1", Type: simulink.Constant, Value: 1})
	add(&simulink.Block{Name: "wtol", Type: simulink.Sum, Signs: "++"})
	con("vsq001", "wtol", 1)
	con("c1", "wtol", 2)

	// --- The 24 comparison atoms: 4 linear, 20 nonlinear. -------------
	cmp := func(name string, op expr.CmpOp, left string, right float64) {
		cn := name + "_c"
		add(&simulink.Block{Name: cn, Type: simulink.Constant, Value: right})
		add(&simulink.Block{Name: name, Type: simulink.RelOp, Op: op})
		con(left, name, 1)
		con(cn, name, 2)
	}
	// Linear (4): actuator range and fleet plausibility.
	cmp("L1_deltaLo", expr.CmpGE, "delta", -0.9)
	cmp("L2_deltaHi", expr.CmpLE, "delta", 0.9)
	add(&simulink.Block{Name: "axleDiff", Type: simulink.Sum, Signs: "++--"})
	con("v1", "axleDiff", 1)
	con("v2", "axleDiff", 2)
	con("v3", "axleDiff", 3)
	con("v4", "axleDiff", 4)
	cmp("L3_axle", expr.CmpLE, "axleDiff", 30)
	cmp("L4_moving", expr.CmpGE, "vavg", 5)
	// Nonlinear (20).
	cmp("N1_ayConsHi", expr.CmpLE, "aypMinusAy", 2)
	add(&simulink.Block{Name: "aypMinusAy", Type: simulink.Sum, Signs: "+-"})
	con("ayp", "aypMinusAy", 1)
	con("lat", "aypMinusAy", 2)
	cmp("N2_ayConsLo", expr.CmpGE, "aypMinusAy", -2)
	cmp("N3_dslHi", expr.CmpLE, "dsl", 120)
	cmp("N4_dslLo", expr.CmpGE, "dsl", -120)
	for i := 1; i <= 4; i++ {
		name := fmt.Sprintf("N%d_wheel%d", 4+i, i)
		add(&simulink.Block{Name: name, Type: simulink.RelOp, Op: expr.CmpLE})
		con(fmt.Sprintf("wdev%d", i), name, 1)
		con("wtol", name, 2)
	}
	cmp("N9_under", expr.CmpGE, "slip", 0.05)
	cmp("N10_over", expr.CmpLE, "slip", -0.05)
	cmp("N11_friction", expr.CmpLE, "aysq", 96.04)
	cmp("N12_load", expr.CmpLE, "yy", 2500)
	cmp("N13_dir", expr.CmpGE, "dirCons", 0)
	cmp("N14_counter", expr.CmpGE, "counter", -5)
	cmp("N15_marginHi", expr.CmpLE, "margin", 50)
	cmp("N16_marginLo", expr.CmpGE, "margin", -50)
	cmp("N17_yawAyHi", expr.CmpLE, "yawAy", 60)
	cmp("N18_yawAyLo", expr.CmpGE, "yawAy", -60)
	cmp("N19_scHi", expr.CmpLE, "sc", 25)
	cmp("N20_scLo", expr.CmpGE, "sc", -25)

	// --- Dual-channel monitoring controller (Boolean logic). ----------
	logic := func(name string, op simulink.LogicOp, ins ...string) string {
		add(&simulink.Block{Name: name, Type: simulink.Logic, Logic: op})
		for i, s := range ins {
			con(s, name, i+1)
		}
		return name
	}
	not := func(name, in string) string { return logic(name, simulink.LogicNot, in) }

	// Channel A judges the front axle, channel B the rear.
	chA := logic("chA", simulink.LogicAnd, "N5_wheel1", "N6_wheel2")
	chB := logic("chB", simulink.LogicAnd, "N7_wheel3", "N8_wheel4")
	agree := not("agree", logic("disagree", simulink.LogicXor, chA, chB))
	// 2-out-of-4 voter over the wheel checks.
	wheels := []string{"N5_wheel1", "N6_wheel2", "N7_wheel3", "N8_wheel4"}
	var pairs []string
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			p := logic(fmt.Sprintf("vote%d%d", i+1, j+1), simulink.LogicAnd, wheels[i], wheels[j])
			pairs = append(pairs, p)
		}
	}
	voter := logic("voter2oo4", simulink.LogicOr, pairs...)
	sensorsOK := logic("sensorsOK", simulink.LogicAnd, voter, agree, "L3_axle",
		"N1_ayConsHi", "N2_ayConsLo", "N17_yawAyHi", "N18_yawAyLo")

	// Situation classification: 16 rows over the four indicator bits
	// (under, over, limits, moving); each row maps to an expected
	// controller response which is checked against the actual atoms.
	under := "N9_under"
	over := "N10_over"
	limits := logic("limits", simulink.LogicAnd, "N3_dslHi", "N4_dslLo", "N11_friction", "N12_load")
	moving := "L4_moving"
	bits := []string{under, over, limits, moving}
	notBits := make([]string, 4)
	for i, b := range bits {
		notBits[i] = not("n_"+b, b)
	}
	respOK := []string{
		logic("respDir", simulink.LogicAnd, "N13_dir", "N14_counter"),
		logic("respMargin", simulink.LogicAnd, "N15_marginHi", "N16_marginLo"),
		logic("respRange", simulink.LogicAnd, "L1_deltaLo", "L2_deltaHi"),
		logic("respCoupling", simulink.LogicAnd, "N19_scHi", "N20_scLo"),
	}
	var rowViol []string
	for row := 0; row < 16; row++ {
		ins := make([]string, 4)
		for b := 0; b < 4; b++ {
			if row>>uint(b)&1 == 1 {
				ins[b] = bits[b]
			} else {
				ins[b] = notBits[b]
			}
		}
		rname := fmt.Sprintf("row%02d", row)
		r := logic(rname, simulink.LogicAnd, ins...)
		// Rows where the car is destabilised (under or over set while
		// moving) demand the full response; quiet rows demand only range.
		expected := respOK[2]
		if row&1 == 1 || row&2 == 2 { // under or over
			expected = logic("exp"+rname, simulink.LogicAnd, respOK[0], respOK[1], respOK[2], respOK[3])
		}
		v := logic("viol"+rname, simulink.LogicAnd, r, not("nexp"+rname, expected))
		rowViol = append(rowViol, v)
	}
	// Escalation ladder: viol rows OR-chained pairwise with the pairwise
	// diagnostic-coverage matrix over the eight monitor bits.
	diagBits := []string{chA, chB, voter, agree, under, over, limits, moving}
	var diag []string
	for i := 0; i < len(diagBits); i++ {
		for j := i + 1; j < len(diagBits); j++ {
			x := logic(fmt.Sprintf("dx%d_%d", i, j), simulink.LogicXor, diagBits[i], diagBits[j])
			d := logic(fmt.Sprintf("dc%d_%d", i, j), simulink.LogicOr, x,
				logic(fmt.Sprintf("da%d_%d", i, j), simulink.LogicAnd, diagBits[i], diagBits[j]))
			diag = append(diag, d)
		}
	}
	diagAll := logic("diagAll", simulink.LogicAnd, diag...)
	// Escalation ladder: the row violations are chained (each stage latches
	// the previous), mirroring the alarm prioritisation of the original
	// controller.
	ladder := rowViol[0]
	for i := 1; i < len(rowViol); i++ {
		ladder = logic(fmt.Sprintf("ladder%02d", i), simulink.LogicOr, ladder, rowViol[i])
	}
	anyViol := ladder

	// Built-in self-test: a 16-row plausibility matrix over the channel
	// and voter bits. Rows whose bit pattern is structurally impossible
	// (e.g. both channels healthy but the 2-out-of-4 voter failing) drive
	// a BIST fault flag; the query requires the self-test to pass.
	bistBits := []string{chA, chB, voter, agree}
	notBist := make([]string, 4)
	for i, b := range bistBits {
		notBist[i] = not("nb_"+b, b)
	}
	var bistFaults []string
	for row := 0; row < 16; row++ {
		ins := make([]string, 4)
		for b := 0; b < 4; b++ {
			if row>>uint(b)&1 == 1 {
				ins[b] = bistBits[b]
			} else {
				ins[b] = notBist[b]
			}
		}
		hasA := row&1 == 1
		hasB := row&2 == 2
		hasV := row&4 == 4
		hasAg := row&8 == 8
		// Structurally impossible patterns given the definitions:
		// both channels healthy ⇒ voter must pass and channels agree;
		// channels in the same state ⇒ agree must be set.
		impossible := (hasA && hasB && (!hasV || !hasAg)) || (hasA == hasB && !hasAg) || (hasA != hasB && hasAg)
		if !impossible {
			continue
		}
		bistFaults = append(bistFaults, logic(fmt.Sprintf("bist%02d", row), simulink.LogicAnd, ins...))
	}
	bistFault := bistFaults[0]
	for i := 1; i < len(bistFaults); i++ {
		bistFault = logic(fmt.Sprintf("bistLadder%02d", i), simulink.LogicOr, bistFault, bistFaults[i])
	}
	bistOK := not("bistOK", bistFault)

	// The critical-driving-situation query: plausible sensors, the car
	// oversteering within physical limits, diagnostics conclusive, and
	// some classified response violated (typically the actuator range).
	critical := logic("critical", simulink.LogicAnd,
		sensorsOK, over, limits, moving, diagAll, bistOK, anyViol)
	add(&simulink.Block{Name: "CriticalScenario", Type: simulink.Outport})
	con(critical, "CriticalScenario", 1)

	return m
}

// SensorBounds returns the published sensor ranges of the case study.
func SensorBounds() map[string][2]float64 {
	return map[string][2]float64{
		"yaw":   {-7, 7},
		"lat":   {-20, 20},
		"v1":    {-400, 400},
		"v2":    {-400, 400},
		"v3":    {-400, 400},
		"v4":    {-400, 400},
		"delta": {-1, 1},
	}
}

// Problem converts the model through the Fig. 3 tool-chain (Simulink →
// Lustre → AB problem) and attaches the sensor ranges. Auxiliary variables
// introduced by the conversion (none for this model) keep their derived
// bounds.
func Problem() (*core.Problem, error) {
	m := Model()
	prog, err := lustre.FromSimulink(m)
	if err != nil {
		return nil, err
	}
	// Round-trip through the textual representation, as the paper's
	// tool-chain does.
	text := lustre.Format(prog)
	prog2, err := lustre.Parse(text)
	if err != nil {
		return nil, fmt.Errorf("steering: re-parsing generated Lustre: %w", err)
	}
	p, err := lustre.ExtractProblem(prog2)
	if err != nil {
		return nil, err
	}
	for name, b := range SensorBounds() {
		p.SetBounds(name, b[0], b[1])
	}
	p.Comments = append(p.Comments, "car steering control case study (synthetic substitute)")
	return p, nil
}
