// Package baseline implements the two comparison solvers of the paper's
// evaluation (Sec. 5): a MathSAT-3-style tightly-integrated Boolean+linear
// lazy SMT solver, and a CVC-Lite-style solver with eager lemma grounding
// and proof-object bookkeeping. Both are *linear-only*: handed a problem
// with nonlinear atoms they fail with ErrNonlinear, reproducing Table 1's
// "both CVC Lite and MathSAT rejected the problems due to the nonlinear
// arithmetic inequalities contained".
//
// Substitution notes (see DESIGN.md): the originals are closed/unavailable;
// these reimplementations model the architectural properties the paper's
// comparison rests on —
//
//   - MathSATLike: tight integration — one incremental Boolean solver (no
//     external restarts), conflict-set minimisation, and an eager
//     mutual-exclusion preprocessing pass — makes it competitive on easy
//     Boolean-linear problems (Table 2). Its theory layer has no native
//     integer support: integrality and disequalities are enforced by
//     splitting-on-demand lemmas, one SAT+LP round per split — the
//     mechanism that grinds on the integer-programming-flavoured Sudoku
//     instances (Table 3, 75-137 minutes in the paper).
//   - CVCLiteLike: the same lazy skeleton with a deeper eager pass
//     (implication lemmas as well as exclusions, making small instances
//     nearly propositional — fastest on Table 2), plus proof-object
//     retention (CVC Lite builds proofs by default), which charges memory
//     on every theory check; on Sudoku-scale instances the accountant
//     exceeds its budget and the solver aborts with ErrOutOfMemory —
//     Table 3's "–∗ ... out-of-memory aborts".
package baseline

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"absolver/internal/core"
	"absolver/internal/expr"
	"absolver/internal/lp"
	"absolver/internal/sat"
)

// ErrNonlinear is returned when the problem contains nonlinear atoms.
var ErrNonlinear = errors.New("baseline: nonlinear arithmetic rejected")

// ErrOutOfMemory is returned by CVCLiteLike when its memory accountant
// exceeds the configured budget (the paper's –∗ entries).
var ErrOutOfMemory = errors.New("baseline: out of memory")

// ErrTimeout is returned when Timeout elapses before a verdict.
var ErrTimeout = errors.New("baseline: timeout")

// Stats counts baseline solver work.
type Stats struct {
	Iterations   int
	TheoryChecks int
	Splits       int
	Lemmas       int
	// ProofBytes is CVCLiteLike's accounted proof-object memory.
	ProofBytes int64
}

// Result is a baseline verdict.
type Result struct {
	Status core.Status
	Model  *core.Model
	Stats  Stats
}

// MathSATLike is the tightly-integrated Boolean+linear lazy SMT baseline.
type MathSATLike struct {
	// Timeout bounds the wall-clock solve time (0 = none).
	Timeout time.Duration
	// MaxIterations bounds SAT↔theory rounds (0 = 10M).
	MaxIterations int
}

// Name returns the solver's display name.
func (m *MathSATLike) Name() string { return "mathsat-like" }

// Solve decides the problem. Nonlinear atoms yield ErrNonlinear.
func (m *MathSATLike) Solve(p *core.Problem) (Result, error) {
	return lazySolve(p, lazyConfig{
		timeout:       m.Timeout,
		maxIterations: m.MaxIterations,
		ground:        groundExclusions,
	})
}

// CVCLiteLike is the eager-grounding, proof-logging baseline.
type CVCLiteLike struct {
	// MemoryBudget bounds accounted proof memory in bytes
	// (0 = 256 MiB).
	MemoryBudget int64
	// Timeout bounds the wall-clock solve time (0 = none).
	Timeout time.Duration
	// MaxIterations bounds SAT↔theory rounds (0 = 10M).
	MaxIterations int
}

// Name returns the solver's display name.
func (c *CVCLiteLike) Name() string { return "cvclite-like" }

// Solve decides the problem. Nonlinear atoms yield ErrNonlinear; exceeding
// the memory budget yields ErrOutOfMemory.
func (c *CVCLiteLike) Solve(p *core.Problem) (Result, error) {
	budget := c.MemoryBudget
	if budget == 0 {
		budget = 256 << 20
	}
	return lazySolve(p, lazyConfig{
		timeout:       c.Timeout,
		maxIterations: c.MaxIterations,
		ground:        groundFull,
		proofBudget:   budget,
	})
}

// groundLevel selects the eager preprocessing depth: MathSATLike derives
// mutual exclusions between atoms during preprocessing; CVCLiteLike's eager
// approach additionally grounds implications.
type groundLevel int

const (
	groundNone groundLevel = iota
	groundExclusions
	groundFull
)

type lazyConfig struct {
	timeout       time.Duration
	maxIterations int
	ground        groundLevel
	proofBudget   int64 // 0 = no proof logging
}

// lazySolve is the shared lazy DPLL(T) skeleton of both baselines.
func lazySolve(p *core.Problem, cfg lazyConfig) (Result, error) {
	var st Stats
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	for _, a := range p.Bindings {
		if !expr.IsLinear(a) {
			return Result{}, fmt.Errorf("%w: %s", ErrNonlinear, a.String())
		}
	}
	maxIter := cfg.maxIterations
	if maxIter == 0 {
		maxIter = 10_000_000
	}
	deadline := time.Time{}
	if cfg.timeout > 0 {
		deadline = time.Now().Add(cfg.timeout)
	}

	s := sat.New()
	s.EnsureVars(p.NumVars)
	for _, cl := range p.Clauses {
		lits := make([]sat.Lit, len(cl))
		for i, n := range cl {
			lits[i] = sat.FromDIMACS(n)
		}
		s.AddClause(lits...)
	}

	// bindings grows as splitting-on-demand introduces fresh atoms.
	bindings := map[int]expr.Atom{}
	for v, a := range p.Bindings {
		bindings[v] = a
	}
	numVars := p.NumVars
	lower, upper := boundsMaps(p)
	intVars := p.IntVars()
	// splitDone guards against re-splitting the same disequality or the
	// same integer branch point (which would loop forever); a repeat falls
	// back to blocking the assignment.
	splitDone := map[string]bool{}

	if cfg.ground != groundNone {
		st.Lemmas = groundLemmas(s, bindings, cfg.ground == groundExclusions)
	}
	// Tight integration: bias the Boolean search towards asserting
	// equalities (one cheap row) rather than disequalities (a case split).
	for v, a := range bindings {
		switch a.Op {
		case expr.CmpEQ:
			s.SetPolarity(v, false)
		case expr.CmpNE:
			s.SetPolarity(v, true)
		}
	}

	for iter := 0; iter < maxIter; iter++ {
		st.Iterations++
		if !deadline.IsZero() && time.Now().After(deadline) {
			return Result{Status: core.StatusUnknown, Stats: st}, ErrTimeout
		}
		model, res, err := s.SolveModel()
		if err != nil {
			return Result{Stats: st}, err
		}
		if res != sat.LTrue {
			return Result{Status: core.StatusUnsat, Stats: st}, nil
		}
		for len(model) < numVars {
			model = append(model, false)
		}

		// Assemble asserted atoms.
		var asserted []struct {
			lit  int
			atom expr.Atom
		}
		for v, a := range bindings {
			aa := a
			lit := v + 1
			if !model[v] {
				aa = a.Negate()
				lit = -lit
			}
			asserted = append(asserted, struct {
				lit  int
				atom expr.Atom
			}{lit, aa})
		}

		st.TheoryChecks++
		if cfg.proofBudget > 0 {
			// Proof-object accounting: every theory check retains the full
			// constraint system it dispatched (CVC Lite keeps derivations
			// for proof production). ~96 bytes per retained atom record.
			st.ProofBytes += int64(len(asserted)+len(p.Clauses)/4) * 96
			if st.ProofBytes > cfg.proofBudget {
				return Result{Status: core.StatusUnknown, Stats: st}, ErrOutOfMemory
			}
		}

		// Integer-blind theory check: real-relaxation rows with ε-strict
		// inequalities; disequalities checked at the witness.
		rows := make([]lp.Constraint, 0, len(asserted))
		var neqs []struct {
			lit  int
			atom expr.Atom
		}
		for _, aa := range asserted {
			if aa.atom.Op == expr.CmpNE {
				neqs = append(neqs, aa)
				continue
			}
			la, _ := expr.LinearizeAtom(aa.atom)
			row := relaxRow(la)
			row.Tag = aa.lit
			rows = append(rows, row)
		}
		prob := lp.NewProblem()
		prob.Constraints = rows
		for v, lo := range lower {
			prob.Lower[v] = lo
		}
		for v, hi := range upper {
			prob.Upper[v] = hi
		}
		var lr lp.Result
		if iis := prob.IISByPropagation(); iis != nil {
			lr = lp.Result{Status: lp.Infeasible}
			blockRows(s, rows, iis)
			continue
		}
		lr = prob.Solve()
		switch lr.Status {
		case lp.Infeasible:
			// Tight integration: minimise the conflict to an irreducible
			// subset before handing it to the Boolean layer.
			if iis := prob.IIS(); iis != nil {
				blockRows(s, rows, iis)
			} else {
				blockAssignment(s, asserted)
			}
			continue
		case lp.Feasible:
			// Check disequalities at the witness.
			var violated *struct {
				lit  int
				atom expr.Atom
			}
			for i := range neqs {
				la, _ := expr.LinearizeAtom(neqs[i].atom)
				lhs := 0.0
				for v, c := range la.Form.Coeffs {
					lhs += c * lr.X[v]
				}
				d := lhs - la.Bound
				if d < 1e-9 && d > -1e-9 {
					violated = &neqs[i]
					break
				}
			}
			if violated == nil {
				// Integer discipline by splitting-on-demand: a fractional
				// value of an integer variable spawns the branch lemma
				// (x ≤ ⌊v⌋ ∨ x ≥ ⌈v⌉) over fresh atoms. This is the
				// era-accurate (and costly) way all-in-one lazy solvers
				// handled the "more involved integer programming
				// sub-problems" of Sec. 5.3.
				if name, v, frac := firstFractional(intVars, lr.X, 1e-6); frac {
					key := fmt.Sprintf("int|%s|%g", name, floorOf(v))
					if splitDone[key] {
						blockAssignment(s, asserted)
						continue
					}
					splitDone[key] = true
					st.Splits++
					leAtom, _ := expr.ParseAtom(fmt.Sprintf("%s <= %g", name, floorOf(v)), expr.Int)
					geAtom, _ := expr.ParseAtom(fmt.Sprintf("%s >= %g", name, floorOf(v)+1), expr.Int)
					leVar, geVar := numVars, numVars+1
					numVars += 2
					s.EnsureVars(numVars)
					bindings[leVar] = leAtom
					bindings[geVar] = geAtom
					s.AddClause(sat.MkLit(leVar, false), sat.MkLit(geVar, false))
					s.AddClause(sat.MkLit(leVar, true), sat.MkLit(geVar, true))
					continue
				}
				env := expr.Env{}
				for k, v := range lr.X {
					env[k] = v
				}
				for _, name := range p.ArithVars() {
					if _, ok := env[name]; !ok {
						if iv, okB := p.Bounds[name]; okB {
							env[name] = iv.Mid()
						} else {
							env[name] = 0
						}
					}
				}
				for name := range intVars {
					if x, ok := env[name]; ok {
						env[name] = roundOf(x)
					}
				}
				if checkModelAtoms(asserted, env) {
					mdl := &core.Model{Bool: model[:numVars:numVars], Real: env}
					return Result{Status: core.StatusSat, Model: mdl, Stats: st}, nil
				}
				// The completed environment violates something. An
				// ε-relaxed strict row can leave an integer variable just
				// off an excluded point (k+1e-6 rounds back onto k):
				// re-examine fractionality at a tighter tolerance and
				// branch on it before giving up.
				if name, v, frac := firstFractional(intVars, lr.X, 1e-9); frac {
					key := fmt.Sprintf("int|%s|%g", name, floorOf(v))
					if !splitDone[key] {
						splitDone[key] = true
						st.Splits++
						leAtom, _ := expr.ParseAtom(fmt.Sprintf("%s <= %g", name, floorOf(v)), expr.Int)
						geAtom, _ := expr.ParseAtom(fmt.Sprintf("%s >= %g", name, floorOf(v)+1), expr.Int)
						leVar, geVar := numVars, numVars+1
						numVars += 2
						s.EnsureVars(numVars)
						bindings[leVar] = leAtom
						bindings[geVar] = geAtom
						s.AddClause(sat.MkLit(leVar, false), sat.MkLit(geVar, false))
						s.AddClause(sat.MkLit(leVar, true), sat.MkLit(geVar, true))
						continue
					}
				}
				// Fall through to splitting on the first failing
				// disequality.
				for i := range neqs {
					if ok, err := neqs[i].atom.Holds(env); err == nil && !ok {
						violated = &neqs[i]
						break
					}
				}
				if violated == nil {
					// No repairable cause: block the assignment.
					blockAssignment(s, asserted)
					continue
				}
			}
			// Splitting-on-demand: introduce x < c and x > c as fresh
			// atoms and the lemma (¬lit ∨ lt ∨ gt); the Boolean search
			// must now pick a side.
			key := violated.atom.String()
			if splitDone[key] {
				blockAssignment(s, asserted)
				continue
			}
			splitDone[key] = true
			st.Splits++
			la, _ := expr.LinearizeAtom(violated.atom)
			ltAtom := violated.atom
			ltAtom.Op = expr.CmpLT
			gtAtom := violated.atom
			gtAtom.Op = expr.CmpGT
			if la.Op != expr.CmpNE {
				// Should not happen: violated is always a disequality.
				blockAssignment(s, asserted)
				continue
			}
			ltVar := numVars
			gtVar := numVars + 1
			numVars += 2
			s.EnsureVars(numVars)
			bindings[ltVar] = ltAtom
			bindings[gtVar] = gtAtom
			lemma := []sat.Lit{sat.MkLit(ltVar, false), sat.MkLit(gtVar, false)}
			if violated.lit > 0 {
				lemma = append(lemma, sat.MkLit(violated.lit-1, true))
			} else {
				lemma = append(lemma, sat.MkLit(-violated.lit-1, false))
			}
			s.AddClause(lemma...)
			// Sides are mutually exclusive with each other and with the
			// equality they split.
			s.AddClause(sat.MkLit(ltVar, true), sat.MkLit(gtVar, true))
			continue
		default:
			return Result{Status: core.StatusUnknown, Stats: st}, fmt.Errorf("baseline: linear solver returned %v", lr.Status)
		}
	}
	return Result{Status: core.StatusUnknown, Stats: st}, fmt.Errorf("baseline: iteration limit")
}

// blockRows adds the negation of the literals tagged on the given rows.
func blockRows(s *sat.Solver, rows []lp.Constraint, iis []int) {
	cl := make([]sat.Lit, 0, len(iis))
	for _, i := range iis {
		lit := rows[i].Tag
		if lit > 0 {
			cl = append(cl, sat.MkLit(lit-1, true))
		} else {
			cl = append(cl, sat.MkLit(-lit-1, false))
		}
	}
	s.AddClause(cl...)
}

// blockAssignment adds the negation of the current atom assignment.
func blockAssignment(s *sat.Solver, asserted []struct {
	lit  int
	atom expr.Atom
}) {
	cl := make([]sat.Lit, len(asserted))
	for i, aa := range asserted {
		if aa.lit > 0 {
			cl[i] = sat.MkLit(aa.lit-1, true)
		} else {
			cl[i] = sat.MkLit(-aa.lit-1, false)
		}
	}
	s.AddClause(cl...)
}

// checkModelAtoms verifies all asserted atoms at env.
func checkModelAtoms(asserted []struct {
	lit  int
	atom expr.Atom
}, env expr.Env) bool {
	for _, aa := range asserted {
		var ok bool
		var err error
		switch aa.atom.Op {
		case expr.CmpLT, expr.CmpGT, expr.CmpNE:
			ok, err = aa.atom.Holds(env)
		default:
			ok, err = aa.atom.HoldsTol(env, 1e-6)
		}
		if err != nil || !ok {
			return false
		}
	}
	return true
}

// relaxRow converts a linear atom to an ε-relaxed weak row (integer-blind:
// no unit tightening).
func relaxRow(la expr.LinearAtom) lp.Constraint {
	row := lp.Constraint{Coeffs: la.Form.Coeffs, RHS: la.Bound}
	switch la.Op {
	case expr.CmpLT:
		row.Rel, row.RHS = lp.LE, la.Bound-lp.Epsilon
	case expr.CmpLE:
		row.Rel = lp.LE
	case expr.CmpGT:
		row.Rel, row.RHS = lp.GE, la.Bound+lp.Epsilon
	case expr.CmpGE:
		row.Rel = lp.GE
	default:
		row.Rel = lp.EQ
	}
	return row
}

// groundLemmas performs the eager pass: for every pair of atoms over the
// same single variable, derive implication/exclusion lemmas by bound
// reasoning and add them as clauses. exclusionsOnly limits the pass to
// mutual exclusions (MathSATLike's preprocessing depth). Returns the
// number of lemmas.
func groundLemmas(s *sat.Solver, bindings map[int]expr.Atom, exclusionsOnly bool) int {
	type uni struct {
		v     int // Boolean variable
		op    expr.CmpOp
		bound float64
		coeff float64
	}
	byVar := map[string][]uni{}
	for v, a := range bindings {
		la, ok := expr.LinearizeAtom(a)
		if !ok || len(la.Form.Coeffs) != 1 {
			continue
		}
		for name, c := range la.Form.Coeffs {
			if c == 0 {
				continue
			}
			byVar[name] = append(byVar[name], uni{v: v, op: la.Op, bound: la.Bound / c, coeff: c})
		}
	}
	lemmas := 0
	for _, atoms := range byVar {
		for i := 0; i < len(atoms); i++ {
			for j := i + 1; j < len(atoms); j++ {
				a, b := atoms[i], atoms[j]
				// Normalise to x ? bound (flip op when coeff < 0).
				opA, opB := normOp(a.op, a.coeff), normOp(b.op, b.coeff)
				rel := pairRelation(opA, a.bound, opB, b.bound)
				switch rel {
				case relExclusive:
					s.AddClause(sat.MkLit(a.v, true), sat.MkLit(b.v, true))
					lemmas++
				case relAImpliesB:
					if !exclusionsOnly {
						s.AddClause(sat.MkLit(a.v, true), sat.MkLit(b.v, false))
						lemmas++
					}
				case relBImpliesA:
					if !exclusionsOnly {
						s.AddClause(sat.MkLit(b.v, true), sat.MkLit(a.v, false))
						lemmas++
					}
				}
			}
		}
	}
	return lemmas
}

func normOp(op expr.CmpOp, coeff float64) expr.CmpOp {
	if coeff > 0 {
		return op
	}
	switch op {
	case expr.CmpLT:
		return expr.CmpGT
	case expr.CmpGT:
		return expr.CmpLT
	case expr.CmpLE:
		return expr.CmpGE
	case expr.CmpGE:
		return expr.CmpLE
	}
	return op
}

type pairRel int

const (
	relNone pairRel = iota
	relExclusive
	relAImpliesB
	relBImpliesA
)

// holdsPoint reports x op b.
func holdsPoint(x float64, op expr.CmpOp, b float64) bool {
	switch op {
	case expr.CmpLT:
		return x < b
	case expr.CmpGT:
		return x > b
	case expr.CmpLE:
		return x <= b
	case expr.CmpGE:
		return x >= b
	case expr.CmpEQ:
		return x == b
	case expr.CmpNE:
		return x != b
	}
	return false
}

func isUp(op expr.CmpOp) bool   { return op == expr.CmpGE || op == expr.CmpGT }
func isDown(op expr.CmpOp) bool { return op == expr.CmpLE || op == expr.CmpLT }

// subsetAtom reports {x : x opA a} ⊆ {x : x opB b}.
func subsetAtom(opA expr.CmpOp, a float64, opB expr.CmpOp, b float64) bool {
	switch {
	case opA == expr.CmpEQ:
		return holdsPoint(a, opB, b)
	case opB == expr.CmpEQ:
		return false // no ray or co-point fits inside a single point
	case opA == expr.CmpNE:
		return opB == expr.CmpNE && a == b
	case opB == expr.CmpNE:
		return !holdsPoint(b, opA, a)
	case isUp(opA) && isUp(opB):
		if a > b {
			return true
		}
		return a == b && !(opB == expr.CmpGT && opA == expr.CmpGE)
	case isDown(opA) && isDown(opB):
		if a < b {
			return true
		}
		return a == b && !(opB == expr.CmpLT && opA == expr.CmpLE)
	}
	return false // opposite rays are never nested
}

// disjointAtom reports {x : x opA a} ∩ {x : x opB b} = ∅.
func disjointAtom(opA expr.CmpOp, a float64, opB expr.CmpOp, b float64) bool {
	switch {
	case opA == expr.CmpEQ:
		return !holdsPoint(a, opB, b)
	case opB == expr.CmpEQ:
		return !holdsPoint(b, opA, a)
	case opA == expr.CmpNE || opB == expr.CmpNE:
		return false // a co-point set meets every nonempty ray / co-point
	case isUp(opA) && isDown(opB):
		if a > b {
			return true
		}
		return a == b && (opA == expr.CmpGT || opB == expr.CmpLT)
	case isDown(opA) && isUp(opB):
		if b > a {
			return true
		}
		return a == b && (opB == expr.CmpGT || opA == expr.CmpLT)
	}
	return false
}

// pairRelation derives the strongest sound lemma between two unit atoms
// x opA a and x opB b.
func pairRelation(opA expr.CmpOp, a float64, opB expr.CmpOp, b float64) pairRel {
	switch {
	case disjointAtom(opA, a, opB, b):
		return relExclusive
	case subsetAtom(opA, a, opB, b):
		return relAImpliesB
	case subsetAtom(opB, b, opA, a):
		return relBImpliesA
	}
	return relNone
}

func boundsMaps(p *core.Problem) (lower, upper map[string]float64) {
	lower = map[string]float64{}
	upper = map[string]float64{}
	for v, iv := range p.Bounds {
		if !isInfNeg(iv.Lo) {
			lower[v] = iv.Lo
		}
		if !isInfPos(iv.Hi) {
			upper[v] = iv.Hi
		}
	}
	return
}

func isInfNeg(x float64) bool { return x < -1e308 }
func isInfPos(x float64) bool { return x > 1e308 }

func floorOf(x float64) float64 { return math.Floor(x) }
func roundOf(x float64) float64 { return math.Round(x) }

// firstFractional returns an integer variable whose witness value is more
// than intTol away from an integer.
func firstFractional(intVars map[string]bool, x map[string]float64, intTol float64) (string, float64, bool) {
	// Deterministic order keeps runs reproducible.
	names := make([]string, 0, len(intVars))
	for v := range intVars {
		names = append(names, v)
	}
	sort.Strings(names)
	for _, v := range names {
		val, ok := x[v]
		if !ok {
			continue
		}
		if math.Abs(val-math.Round(val)) > intTol {
			return v, val, true
		}
	}
	return "", 0, false
}
