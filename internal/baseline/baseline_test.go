package baseline

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"absolver/internal/core"
	"absolver/internal/expr"
)

func atomT(t *testing.T, src string, dom expr.Domain) expr.Atom {
	t.Helper()
	a, err := expr.ParseAtom(src, dom)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func solvers() []interface {
	Name() string
	Solve(*core.Problem) (Result, error)
} {
	return []interface {
		Name() string
		Solve(*core.Problem) (Result, error)
	}{
		&MathSATLike{},
		&CVCLiteLike{},
	}
}

func TestRejectNonlinear(t *testing.T) {
	// Table 1's comparative rows: nonlinear problems are rejected.
	p := core.NewProblem()
	p.AddClause(1)
	p.Bind(0, atomT(t, "x * x >= 4", expr.Real))
	for _, s := range solvers() {
		_, err := s.Solve(p)
		if !errors.Is(err, ErrNonlinear) {
			t.Fatalf("%s: err = %v, want ErrNonlinear", s.Name(), err)
		}
	}
}

func TestPureBoolean(t *testing.T) {
	p := core.NewProblem()
	p.AddClause(1, 2)
	p.AddClause(-1, 2)
	for _, s := range solvers() {
		r, err := s.Solve(p)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if r.Status != core.StatusSat {
			t.Fatalf("%s: status = %v", s.Name(), r.Status)
		}
		if !r.Model.Bool[1] {
			t.Fatalf("%s: var 2 must be true", s.Name())
		}
	}
}

func TestLinearSatUnsat(t *testing.T) {
	for _, s := range solvers() {
		// SAT: (x ≥ 5 ∨ x ≤ 4).
		p := core.NewProblem()
		p.AddClause(1, 2)
		p.Bind(0, atomT(t, "x >= 5", expr.Real))
		p.Bind(1, atomT(t, "x <= 4", expr.Real))
		r, err := s.Solve(p)
		if err != nil || r.Status != core.StatusSat {
			t.Fatalf("%s: %v %v", s.Name(), r.Status, err)
		}
		if err := p.Check(*r.Model); err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		// UNSAT: both forced.
		q := core.NewProblem()
		q.AddClause(1)
		q.AddClause(2)
		q.Bind(0, atomT(t, "x >= 5", expr.Real))
		q.Bind(1, atomT(t, "x <= 4", expr.Real))
		r, err = s.Solve(q)
		if err != nil || r.Status != core.StatusUnsat {
			t.Fatalf("%s: %v %v, want unsat", s.Name(), r.Status, err)
		}
	}
}

func TestDisequalitySplitting(t *testing.T) {
	for _, s := range solvers() {
		// ¬(x = 3) ∧ 2.5 ≤ x ≤ 3.5 — needs splitting-on-demand.
		p := core.NewProblem()
		p.AddClause(-1)
		p.AddClause(2)
		p.AddClause(3)
		p.Bind(0, atomT(t, "x = 3", expr.Real))
		p.Bind(1, atomT(t, "x >= 2.5", expr.Real))
		p.Bind(2, atomT(t, "x <= 3.5", expr.Real))
		r, err := s.Solve(p)
		if err != nil || r.Status != core.StatusSat {
			t.Fatalf("%s: %v %v", s.Name(), r.Status, err)
		}
		if x := r.Model.Real["x"]; x == 3 {
			t.Fatalf("%s: witness sits on excluded point", s.Name())
		}
	}
}

func TestDisequalityUnsat(t *testing.T) {
	for _, s := range solvers() {
		p := core.NewProblem()
		p.AddClause(-1)
		p.AddClause(2)
		p.AddClause(3)
		p.Bind(0, atomT(t, "x = 3", expr.Real))
		p.Bind(1, atomT(t, "x >= 3", expr.Real))
		p.Bind(2, atomT(t, "x <= 3", expr.Real))
		r, err := s.Solve(p)
		if err != nil || r.Status != core.StatusUnsat {
			t.Fatalf("%s: %v %v, want unsat", s.Name(), r.Status, err)
		}
	}
}

func TestGroundLemmasSpeedUpCVC(t *testing.T) {
	// A chain x ≥ 10 ∧ x ≤ 1 among decoys: grounding derives the
	// exclusion eagerly, so CVCLiteLike needs fewer theory checks than
	// MathSATLike on the same instance.
	build := func() *core.Problem {
		p := core.NewProblem()
		p.AddClause(1)
		p.AddClause(2)
		for v := 3; v <= 10; v++ {
			p.AddClause(v, -v)
		}
		p.Bind(0, atomT(t, "x >= 10", expr.Real))
		p.Bind(1, atomT(t, "x <= 1", expr.Real))
		for v := 3; v <= 10; v++ {
			p.Bind(v-1, atomT(t, fmt.Sprintf("x <= %d", 10+v), expr.Real))
		}
		return p
	}
	ms := &MathSATLike{}
	cv := &CVCLiteLike{}
	rm, err1 := ms.Solve(build())
	rc, err2 := cv.Solve(build())
	if err1 != nil || err2 != nil {
		t.Fatalf("%v %v", err1, err2)
	}
	if rm.Status != core.StatusUnsat || rc.Status != core.StatusUnsat {
		t.Fatalf("verdicts %v %v", rm.Status, rc.Status)
	}
	if rc.Stats.Lemmas == 0 {
		t.Fatal("grounding produced no lemmas")
	}
	if rc.Stats.TheoryChecks > rm.Stats.TheoryChecks {
		t.Fatalf("grounded solver used more theory checks (%d) than ungrounded (%d)",
			rc.Stats.TheoryChecks, rm.Stats.TheoryChecks)
	}
}

func TestCVCOutOfMemory(t *testing.T) {
	// A tiny budget triggers the –∗ behaviour on any instance needing a
	// few theory checks.
	// Two-variable atoms dodge the eager grounding pass, forcing a real
	// theory check that charges the accountant.
	p := core.NewProblem()
	p.AddClause(1)
	p.AddClause(2)
	p.Bind(0, atomT(t, "x + y >= 5", expr.Real))
	p.Bind(1, atomT(t, "x + y <= 4", expr.Real))
	cv := &CVCLiteLike{MemoryBudget: 1}
	_, err := cv.Solve(p)
	if !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("err = %v, want ErrOutOfMemory", err)
	}
}

func TestTimeout(t *testing.T) {
	// An instance with many blocked assignments under a zero-ish timeout.
	p := core.NewProblem()
	for v := 1; v <= 12; v++ {
		p.AddClause(v, -v)
		p.Bind(v-1, atomT(t, "x"+string(rune('a'+v))+" >= 0", expr.Real))
	}
	p.AddClause(1)
	ms := &MathSATLike{Timeout: 1 * time.Nanosecond}
	_, err := ms.Solve(p)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}

func TestPairRelation(t *testing.T) {
	LT, GT, LE, GE, EQ, NE := expr.CmpLT, expr.CmpGT, expr.CmpLE, expr.CmpGE, expr.CmpEQ, expr.CmpNE
	cases := []struct {
		opA  expr.CmpOp
		a    float64
		opB  expr.CmpOp
		b    float64
		want pairRel
	}{
		{GE, 5, LE, 4, relExclusive},
		{GE, 5, LE, 5, relNone},
		{GT, 5, LE, 5, relExclusive},
		{GE, 5, GE, 4, relAImpliesB},
		{GE, 4, GE, 5, relBImpliesA},
		{GE, 5, GT, 5, relBImpliesA}, // x>5 ⇒ x≥5
		{GT, 5, GE, 5, relAImpliesB},
		{LE, 4, LE, 5, relAImpliesB},
		{LT, 5, LE, 5, relAImpliesB},
		{LE, 5, LT, 5, relBImpliesA},
		{EQ, 3, LE, 5, relAImpliesB},
		{EQ, 7, LE, 5, relExclusive},
		{EQ, 3, EQ, 3, relAImpliesB},
		{EQ, 3, EQ, 4, relExclusive},
		{EQ, 3, NE, 4, relAImpliesB},
		{EQ, 3, NE, 3, relExclusive},
		{NE, 3, NE, 3, relAImpliesB},
		{NE, 3, GE, 1, relNone},
		{GE, 1, LE, 3, relNone},
	}
	for i, c := range cases {
		got := pairRelation(c.opA, c.a, c.opB, c.b)
		if got != c.want {
			t.Fatalf("case %d: pairRelation(%v %g, %v %g) = %v, want %v",
				i, c.opA, c.a, c.opB, c.b, got, c.want)
		}
	}
}

// TestPairRelationSoundness samples points to confirm every derived lemma.
func TestPairRelationSoundness(t *testing.T) {
	ops := []expr.CmpOp{expr.CmpLT, expr.CmpGT, expr.CmpLE, expr.CmpGE, expr.CmpEQ, expr.CmpNE}
	bounds := []float64{-1, 0, 1}
	points := []float64{-2, -1, -0.5, 0, 0.5, 1, 2}
	for _, opA := range ops {
		for _, a := range bounds {
			for _, opB := range ops {
				for _, b := range bounds {
					rel := pairRelation(opA, a, opB, b)
					for _, x := range points {
						inA := holdsPoint(x, opA, a)
						inB := holdsPoint(x, opB, b)
						switch rel {
						case relExclusive:
							if inA && inB {
								t.Fatalf("exclusive lemma wrong: x=%g in both (%v %g / %v %g)", x, opA, a, opB, b)
							}
						case relAImpliesB:
							if inA && !inB {
								t.Fatalf("A⇒B lemma wrong: x=%g (%v %g / %v %g)", x, opA, a, opB, b)
							}
						case relBImpliesA:
							if inB && !inA {
								t.Fatalf("B⇒A lemma wrong: x=%g (%v %g / %v %g)", x, opA, a, opB, b)
							}
						}
					}
				}
			}
		}
	}
}

func TestAgreesWithEngineOnRandomLinear(t *testing.T) {
	// Baselines and the ABsolver engine must agree on linear verdicts.
	mk := func(seed int) *core.Problem {
		p := core.NewProblem()
		// Three atoms over one variable with varying thresholds; clause
		// pattern from the seed's bits.
		p.Bind(0, atomT(t, "x >= 5", expr.Real))
		p.Bind(1, atomT(t, "x <= 3", expr.Real))
		p.Bind(2, atomT(t, "x = 4", expr.Real))
		for v := 1; v <= 3; v++ {
			if seed>>(v-1)&1 == 1 {
				p.AddClause(v)
			} else {
				p.AddClause(-v)
			}
		}
		return p
	}
	for seed := 0; seed < 8; seed++ {
		ref, err := core.NewEngine(mk(seed), core.Config{}).Solve()
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range solvers() {
			r, err := s.Solve(mk(seed))
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, s.Name(), err)
			}
			if r.Status != ref.Status {
				t.Fatalf("seed %d: %s says %v, engine says %v", seed, s.Name(), r.Status, ref.Status)
			}
		}
	}
}

func TestIntegerBranching(t *testing.T) {
	// 2 < x < 4 over an integer variable: lazy splitting must find x = 3.
	for _, s := range solvers() {
		p := core.NewProblem()
		p.AddClause(1)
		p.AddClause(2)
		p.Bind(0, atomT(t, "x > 2", expr.Int))
		p.Bind(1, atomT(t, "x < 4", expr.Int))
		p.SetBounds("x", -100, 100)
		r, err := s.Solve(p)
		if err != nil || r.Status != core.StatusSat {
			t.Fatalf("%s: %v %v", s.Name(), r.Status, err)
		}
		if r.Model.Real["x"] != 3 {
			t.Fatalf("%s: x = %g, want 3", s.Name(), r.Model.Real["x"])
		}
	}
}

func TestIntegerBranchingUnsat(t *testing.T) {
	// 2 < x < 3 over an integer variable has no solution.
	for _, s := range solvers() {
		p := core.NewProblem()
		p.AddClause(1)
		p.AddClause(2)
		p.Bind(0, atomT(t, "x > 2", expr.Int))
		p.Bind(1, atomT(t, "x < 3", expr.Int))
		p.SetBounds("x", -100, 100)
		r, err := s.Solve(p)
		if err != nil || r.Status != core.StatusUnsat {
			t.Fatalf("%s: %v %v, want unsat", s.Name(), r.Status, err)
		}
	}
}

func TestIntegerNeverFractional(t *testing.T) {
	// A system whose LP relaxation is fractional: x + y = 5, x - y = 2
	// over integers has no solution (x = 3.5); the baselines must not
	// report a fractional witness.
	for _, s := range solvers() {
		p := core.NewProblem()
		p.AddClause(1)
		p.AddClause(2)
		p.Bind(0, atomT(t, "x + y = 5", expr.Int))
		p.Bind(1, atomT(t, "x - y = 2", expr.Int))
		p.SetBounds("x", -10, 10)
		p.SetBounds("y", -10, 10)
		r, err := s.Solve(p)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if r.Status == core.StatusSat {
			x := r.Model.Real["x"]
			t.Fatalf("%s: accepted fractional witness x=%g", s.Name(), x)
		}
	}
}

func TestNearlyCompleteArithmeticSudokuStyle(t *testing.T) {
	// A 4-cell all-different over [1,4] with three cells pinned: the lazy
	// splitting loop must place the last cell correctly.
	for _, s := range solvers() {
		p := core.NewProblem()
		lit := 0
		force := func(src string) {
			lit++
			p.Bind(lit-1, atomT(t, src, expr.Int))
			p.AddClause(lit)
		}
		cells := []string{"c1", "c2", "c3", "c4"}
		for i := range cells {
			for j := i + 1; j < len(cells); j++ {
				force(cells[i] + " - " + cells[j] + " != 0")
			}
		}
		force("c1 = 1")
		force("c2 = 2")
		force("c3 = 3")
		for _, c := range cells {
			p.SetBounds(c, 1, 4)
		}
		r, err := s.Solve(p)
		if err != nil || r.Status != core.StatusSat {
			t.Fatalf("%s: %v %v", s.Name(), r.Status, err)
		}
		if r.Model.Real["c4"] != 4 {
			t.Fatalf("%s: c4 = %g, want 4", s.Name(), r.Model.Real["c4"])
		}
	}
}
