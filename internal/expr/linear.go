package expr

import (
	"fmt"
	"sort"
	"strings"
)

// LinearForm is a normalised linear combination Σ Coeffs[v]·v + Const.
type LinearForm struct {
	Coeffs map[string]float64
	Const  float64
}

// NewLinearForm returns an empty (zero) linear form.
func NewLinearForm() LinearForm {
	return LinearForm{Coeffs: make(map[string]float64)}
}

// Clone returns a deep copy.
func (f LinearForm) Clone() LinearForm {
	g := LinearForm{Coeffs: make(map[string]float64, len(f.Coeffs)), Const: f.Const}
	for k, v := range f.Coeffs {
		g.Coeffs[k] = v
	}
	return g
}

// add accumulates scale·g into f.
func (f *LinearForm) add(g LinearForm, scale float64) {
	for k, v := range g.Coeffs {
		f.Coeffs[k] += scale * v
		if f.Coeffs[k] == 0 {
			delete(f.Coeffs, k)
		}
	}
	f.Const += scale * g.Const
}

// scale multiplies f by s in place.
func (f *LinearForm) scale(s float64) {
	for k := range f.Coeffs {
		f.Coeffs[k] *= s
		if f.Coeffs[k] == 0 {
			delete(f.Coeffs, k)
		}
	}
	f.Const *= s
}

// IsConstant reports whether the form has no variable terms.
func (f LinearForm) IsConstant() bool { return len(f.Coeffs) == 0 }

// Vars returns the sorted variables with nonzero coefficient.
func (f LinearForm) Vars() []string {
	names := make([]string, 0, len(f.Coeffs))
	for n := range f.Coeffs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Eval evaluates the form under env.
func (f LinearForm) Eval(env Env) (float64, error) {
	s := f.Const
	for v, c := range f.Coeffs {
		x, ok := env[v]
		if !ok {
			return 0, fmt.Errorf("%w: %s", ErrUnbound, v)
		}
		s += c * x
	}
	return s, nil
}

// String renders the form as "a·x + b·y + c".
func (f LinearForm) String() string {
	var sb strings.Builder
	first := true
	for _, v := range f.Vars() {
		c := f.Coeffs[v]
		if first {
			if c == 1 {
				sb.WriteString(v)
			} else if c == -1 {
				sb.WriteString("-" + v)
			} else {
				fmt.Fprintf(&sb, "%g*%s", c, v)
			}
			first = false
			continue
		}
		if c >= 0 {
			sb.WriteString(" + ")
		} else {
			sb.WriteString(" - ")
			c = -c
		}
		if c == 1 {
			sb.WriteString(v)
		} else {
			fmt.Fprintf(&sb, "%g*%s", c, v)
		}
	}
	if first {
		fmt.Fprintf(&sb, "%g", f.Const)
	} else if f.Const > 0 {
		fmt.Fprintf(&sb, " + %g", f.Const)
	} else if f.Const < 0 {
		fmt.Fprintf(&sb, " - %g", -f.Const)
	}
	return sb.String()
}

// Linearize attempts to express e as a linear form. It reports ok=false
// when e is genuinely nonlinear (products or quotients of variable terms,
// or function applications with variable arguments).
func Linearize(e Expr) (LinearForm, bool) {
	switch x := e.(type) {
	case Const:
		f := NewLinearForm()
		f.Const = x.V
		return f, true
	case Var:
		f := NewLinearForm()
		f.Coeffs[x.Name] = 1
		return f, true
	case Neg:
		f, ok := Linearize(x.X)
		if !ok {
			return LinearForm{}, false
		}
		f.scale(-1)
		return f, true
	case Bin:
		l, okL := Linearize(x.L)
		r, okR := Linearize(x.R)
		if !okL || !okR {
			return LinearForm{}, false
		}
		switch x.Op {
		case OpAdd:
			l.add(r, 1)
			return l, true
		case OpSub:
			l.add(r, -1)
			return l, true
		case OpMul:
			if r.IsConstant() {
				l.scale(r.Const)
				return l, true
			}
			if l.IsConstant() {
				r.scale(l.Const)
				return r, true
			}
			return LinearForm{}, false
		case OpDiv:
			if r.IsConstant() && r.Const != 0 {
				l.scale(1 / r.Const)
				return l, true
			}
			return LinearForm{}, false
		}
		return LinearForm{}, false
	case Call:
		// A function of a constant argument folds to a constant.
		f, ok := Linearize(x.Arg)
		if ok && f.IsConstant() {
			v, err := x.Eval(Env{})
			if err == nil {
				g := NewLinearForm()
				g.Const = v
				return g, true
			}
		}
		return LinearForm{}, false
	}
	return LinearForm{}, false
}

// LinearAtom is the normalised linear constraint Σ Coeffs[v]·v ? Bound.
type LinearAtom struct {
	Form  LinearForm // Const is always folded into Bound (Form.Const == 0)
	Op    CmpOp
	Bound float64
}

// LinearizeAtom attempts to normalise an atom into a LinearAtom with the
// constant moved to the right-hand side. ok=false means the atom is
// nonlinear and must be dispatched to the nonlinear solver.
func LinearizeAtom(a Atom) (LinearAtom, bool) {
	l, okL := Linearize(a.LHS)
	if !okL {
		return LinearAtom{}, false
	}
	r, okR := Linearize(a.RHS)
	if !okR {
		return LinearAtom{}, false
	}
	l.add(r, -1)
	bound := -l.Const
	l.Const = 0
	return LinearAtom{Form: l, Op: a.Op, Bound: bound}, true
}

// IsLinear reports whether the atom can be handled by the linear solver.
func IsLinear(a Atom) bool {
	_, ok := LinearizeAtom(a)
	return ok
}

// String renders the linear atom.
func (la LinearAtom) String() string {
	return fmt.Sprintf("%s %s %g", la.Form.String(), la.Op, la.Bound)
}
