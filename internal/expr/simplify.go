package expr

// Simplify performs local algebraic simplification: constant folding,
// identity and absorbing elements, double negation, and collapse of
// subtraction of identical terms. It never changes the value of the
// expression on its domain of definition. Division by a constant zero is
// left intact (it must keep failing at evaluation time).
func Simplify(e Expr) Expr {
	switch x := e.(type) {
	case Const, Var:
		return e
	case Neg:
		inner := Simplify(x.X)
		switch y := inner.(type) {
		case Const:
			return Const{-y.V}
		case Neg:
			return y.X
		}
		return Neg{inner}
	case Bin:
		l := Simplify(x.L)
		r := Simplify(x.R)
		lc, lIsC := l.(Const)
		rc, rIsC := r.(Const)
		switch x.Op {
		case OpAdd:
			if lIsC && rIsC {
				return Const{lc.V + rc.V}
			}
			if lIsC && lc.V == 0 {
				return r
			}
			if rIsC && rc.V == 0 {
				return l
			}
			if n, ok := r.(Neg); ok {
				return Simplify(Sub(l, n.X))
			}
		case OpSub:
			if lIsC && rIsC {
				return Const{lc.V - rc.V}
			}
			if rIsC && rc.V == 0 {
				return l
			}
			if lIsC && lc.V == 0 {
				return Simplify(Neg{r})
			}
			if Equal(l, r) {
				return Const{0}
			}
		case OpMul:
			if lIsC && rIsC {
				return Const{lc.V * rc.V}
			}
			if lIsC {
				switch lc.V {
				case 0:
					return Const{0}
				case 1:
					return r
				case -1:
					return Simplify(Neg{r})
				}
			}
			if rIsC {
				switch rc.V {
				case 0:
					return Const{0}
				case 1:
					return l
				case -1:
					return Simplify(Neg{l})
				}
			}
		case OpDiv:
			if rIsC && rc.V != 0 {
				if lIsC {
					return Const{lc.V / rc.V}
				}
				if rc.V == 1 {
					return l
				}
				if rc.V == -1 {
					return Simplify(Neg{l})
				}
			}
			if lIsC && lc.V == 0 && !(rIsC && rc.V == 0) {
				// 0/r: keep only if r may be 0; a constant nonzero r folds.
				if rIsC {
					return Const{0}
				}
			}
		}
		return Bin{x.Op, l, r}
	case Call:
		arg := Simplify(x.Arg)
		if c, ok := arg.(Const); ok {
			if v, err := (Call{x.Fn, c}).Eval(Env{}); err == nil {
				return Const{v}
			}
		}
		return Call{x.Fn, arg}
	}
	return e
}
