package expr

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"absolver/internal/interval"
)

func mustParse(t *testing.T, src string) Expr {
	t.Helper()
	e, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return e
}

func evalAt(t *testing.T, e Expr, env Env) float64 {
	t.Helper()
	v, err := e.Eval(env)
	if err != nil {
		t.Fatalf("Eval: %v", err)
	}
	return v
}

func TestEvalBasic(t *testing.T) {
	e := Add(Mul(C(2), V("x")), C(1)) // 2x + 1
	if got := evalAt(t, e, Env{"x": 3}); got != 7 {
		t.Fatalf("got %g", got)
	}
}

func TestEvalPaperExpression(t *testing.T) {
	// The Fig. 2 real constraint: a*x + 3.5/(4-y) + 2*y.
	e := mustParse(t, "a * x + 3.5 / ( 4 - y ) + 2 * y")
	got := evalAt(t, e, Env{"a": 2, "x": 1, "y": 3})
	want := 2.0 + 3.5/1.0 + 6.0
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("got %g want %g", got, want)
	}
}

func TestEvalErrors(t *testing.T) {
	e := Div(C(1), V("x"))
	if _, err := e.Eval(Env{"x": 0}); !errors.Is(err, ErrDomain) {
		t.Fatalf("want ErrDomain, got %v", err)
	}
	if _, err := e.Eval(Env{}); !errors.Is(err, ErrUnbound) {
		t.Fatalf("want ErrUnbound, got %v", err)
	}
	if _, err := Log(C(-1)).Eval(Env{}); !errors.Is(err, ErrDomain) {
		t.Fatalf("log(-1): %v", err)
	}
	if _, err := Sqrt(C(-1)).Eval(Env{}); !errors.Is(err, ErrDomain) {
		t.Fatalf("sqrt(-1): %v", err)
	}
}

func TestParsePrecedence(t *testing.T) {
	cases := []struct {
		src  string
		env  Env
		want float64
	}{
		{"1 + 2 * 3", nil, 7},
		{"(1 + 2) * 3", nil, 9},
		{"2 - 3 - 4", nil, -5},
		{"12 / 3 / 2", nil, 2},
		{"-2 * 3", nil, -6},
		{"-(2 + 3)", nil, -5},
		{"2 * -3", nil, -6},
		{"1 - -1", nil, 2},
		{"+5", nil, 5},
		{"1e2 + 1.5e-1", nil, 100.15},
		{"x + y * z", Env{"x": 1, "y": 2, "z": 3}, 7},
		{"sin(0)", nil, 0},
		{"cos(0)", nil, 1},
		{"exp(0)", nil, 1},
		{"sqrt(9)", nil, 3},
		{"abs(-4)", nil, 4},
		{"log(1)", nil, 0},
		{"2*sin(0) + cos(0)", nil, 1},
	}
	for _, c := range cases {
		e := mustParse(t, c.src)
		if got := evalAt(t, e, c.env); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("%q = %g, want %g", c.src, got, c.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		"", "1 +", "* 2", "(1", "1)", "1 2", "sin(", "sin(1", "$x", "1..2 + 1..",
	} {
		if _, err := Parse(src); err == nil {
			t.Fatalf("Parse(%q) should fail", src)
		}
	}
}

func TestParseAtomForms(t *testing.T) {
	cases := []struct {
		src string
		op  CmpOp
	}{
		{"x < 5", CmpLT}, {"x > 5", CmpGT}, {"x <= 5", CmpLE},
		{"x >= 5", CmpGE}, {"x = 5", CmpEQ}, {"x == 5", CmpEQ},
		{"x != 5", CmpNE}, {"x <> 5", CmpNE},
	}
	for _, c := range cases {
		a, err := ParseAtom(c.src, Real)
		if err != nil {
			t.Fatalf("ParseAtom(%q): %v", c.src, err)
		}
		if a.Op != c.op {
			t.Fatalf("ParseAtom(%q).Op = %v, want %v", c.src, a.Op, c.op)
		}
	}
	if _, err := ParseAtom("x + 1", Real); err == nil {
		t.Fatal("atom without comparison should fail")
	}
	if _, err := ParseAtom("x < 1 < 2", Real); err == nil {
		t.Fatal("chained comparison should fail")
	}
}

func TestStringRoundTrip(t *testing.T) {
	srcs := []string{
		"a * x + 3.5 / ( 4 - y ) + 2 * y",
		"2*i + j",
		"-x - -y",
		"(a + b) * (c - d)",
		"1 / (2 / (3 / x))",
		"sin(x) * cos(y) + exp(z)",
		"-(a + b)",
		"a - (b - c)",
		"a / (b * c)",
	}
	rng := rand.New(rand.NewSource(5))
	for _, src := range srcs {
		e1 := mustParse(t, src)
		s := String(e1)
		e2, err := Parse(s)
		if err != nil {
			t.Fatalf("re-parse of %q (from %q): %v", s, src, err)
		}
		// Semantic round-trip: equal values on random environments.
		for i := 0; i < 20; i++ {
			env := Env{}
			for _, v := range Vars(e1) {
				env[v] = rng.Float64()*10 - 5
			}
			v1, err1 := e1.Eval(env)
			v2, err2 := e2.Eval(env)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("%q: error mismatch %v vs %v", src, err1, err2)
			}
			if err1 == nil && math.Abs(v1-v2) > 1e-9*(1+math.Abs(v1)) {
				t.Fatalf("%q: %g vs %g (printed %q)", src, v1, v2, s)
			}
		}
	}
}

func TestVars(t *testing.T) {
	e := mustParse(t, "a*x + 3.5/(4-y) + 2*y")
	got := Vars(e)
	want := []string{"a", "x", "y"}
	if len(got) != len(want) {
		t.Fatalf("Vars = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Vars = %v, want %v", got, want)
		}
	}
}

// numericDiff cross-checks symbolic derivatives against central differences.
func TestDiffNumeric(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	srcs := []string{
		"x * x", "x * y", "x / y", "x + y - 2*x", "sin(x)", "cos(x * y)",
		"exp(x / 2)", "sqrt(x * x + 1)", "log(x * x + 1)",
		"a * x + 3.5 / (4 - y) + 2 * y", "x / (y / z)",
	}
	for _, src := range srcs {
		e := mustParse(t, src)
		for _, v := range Vars(e) {
			d := e.Diff(v)
			ds := Simplify(d)
			for i := 0; i < 30; i++ {
				env := Env{}
				for _, u := range Vars(e) {
					env[u] = rng.Float64()*4 + 0.5 // keep away from singularities
				}
				h := 1e-6
				envP := Env{}
				envM := Env{}
				for k, x := range env {
					envP[k], envM[k] = x, x
				}
				envP[v] += h
				envM[v] -= h
				fp, err1 := e.Eval(envP)
				fm, err2 := e.Eval(envM)
				sym, err3 := ds.Eval(env)
				if err1 != nil || err2 != nil || err3 != nil {
					continue
				}
				num := (fp - fm) / (2 * h)
				if math.Abs(num-sym) > 1e-4*(1+math.Abs(num)) {
					t.Fatalf("%q d/d%s at %v: numeric %g, symbolic %g", src, v, env, num, sym)
				}
			}
		}
	}
}

func TestSimplify(t *testing.T) {
	cases := []struct {
		in   Expr
		want Expr
	}{
		{Add(C(1), C(2)), C(3)},
		{Add(V("x"), C(0)), V("x")},
		{Add(C(0), V("x")), V("x")},
		{Mul(V("x"), C(0)), C(0)},
		{Mul(C(1), V("x")), V("x")},
		{Mul(C(-1), V("x")), Neg{V("x")}},
		{Sub(V("x"), V("x")), C(0)},
		{Div(V("x"), C(1)), V("x")},
		{Neg{Neg{V("x")}}, V("x")},
		{Neg{C(3)}, C(-3)},
		{Sub(V("x"), C(0)), V("x")},
		{Call{FuncSqrt, C(4)}, C(2)},
		{Div(C(6), C(3)), C(2)},
	}
	for i, c := range cases {
		got := Simplify(c.in)
		if !Equal(got, c.want) {
			t.Fatalf("case %d: Simplify(%s) = %s, want %s", i, String(c.in), String(got), String(c.want))
		}
	}
}

// Property: Simplify preserves value wherever both are defined.
func TestSimplifyPreservesValue(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	srcs := []string{
		"x*1 + 0*y", "x - x + y", "(x + 0) * (1 * y)", "-(x - y)",
		"x / 1 - y / -1", "2*3*x", "sin(0)*x + cos(0)",
		"x*(y-y) + z", "sqrt(4)*x",
	}
	for _, src := range srcs {
		e := mustParse(t, src)
		s := Simplify(e)
		for i := 0; i < 50; i++ {
			env := Env{}
			for _, v := range Vars(e) {
				env[v] = rng.Float64()*20 - 10
			}
			v1, err1 := e.Eval(env)
			v2, err2 := s.Eval(env)
			if err1 != nil || err2 != nil {
				continue
			}
			if math.Abs(v1-v2) > 1e-9*(1+math.Abs(v1)) {
				t.Fatalf("%q: %g vs simplified %g", src, v1, v2)
			}
		}
	}
}

func TestLinearize(t *testing.T) {
	f, ok := Linearize(mustParse(t, "2*x + 3*y - x + 4"))
	if !ok {
		t.Fatal("should be linear")
	}
	if f.Coeffs["x"] != 1 || f.Coeffs["y"] != 3 || f.Const != 4 {
		t.Fatalf("form = %+v", f)
	}
	// Division by constant.
	f, ok = Linearize(mustParse(t, "(x + y) / 2"))
	if !ok || f.Coeffs["x"] != 0.5 || f.Coeffs["y"] != 0.5 {
		t.Fatalf("form = %+v ok=%v", f, ok)
	}
	// Constant * parenthesised.
	f, ok = Linearize(mustParse(t, "3 * (x - 2)"))
	if !ok || f.Coeffs["x"] != 3 || f.Const != -6 {
		t.Fatalf("form = %+v", f)
	}
	// Nonlinear cases.
	for _, src := range []string{"x * y", "x / y", "sin(x)", "x * x", "1/(4-y)"} {
		if _, ok := Linearize(mustParse(t, src)); ok {
			t.Fatalf("%q should be nonlinear", src)
		}
	}
	// Function of constant folds.
	f, ok = Linearize(mustParse(t, "sqrt(16) + x"))
	if !ok || f.Const != 4 || f.Coeffs["x"] != 1 {
		t.Fatalf("form = %+v", f)
	}
}

func TestLinearizeAtom(t *testing.T) {
	a, err := ParseAtom("2*i + j < 10", Int)
	if err != nil {
		t.Fatal(err)
	}
	la, ok := LinearizeAtom(a)
	if !ok {
		t.Fatal("should be linear")
	}
	if la.Op != CmpLT || la.Bound != 10 || la.Form.Coeffs["i"] != 2 || la.Form.Coeffs["j"] != 1 {
		t.Fatalf("la = %+v", la)
	}
	// Variables on both sides.
	a, _ = ParseAtom("x + 1 <= y - 2", Real)
	la, ok = LinearizeAtom(a)
	if !ok || la.Form.Coeffs["x"] != 1 || la.Form.Coeffs["y"] != -1 || la.Bound != -3 {
		t.Fatalf("la = %+v", la)
	}
	// The Fig. 2 nonlinear constraint must be rejected.
	a, _ = ParseAtom("a * x + 3.5 / ( 4 - y ) + 2 * y >= 7.1", Real)
	if _, ok := LinearizeAtom(a); ok {
		t.Fatal("nonlinear atom linearised")
	}
}

func TestAtomNegate(t *testing.T) {
	pairs := []struct{ op, want CmpOp }{
		{CmpLT, CmpGE}, {CmpGT, CmpLE}, {CmpLE, CmpGT},
		{CmpGE, CmpLT}, {CmpEQ, CmpNE}, {CmpNE, CmpEQ},
	}
	for _, p := range pairs {
		a := NewAtom(V("x"), p.op, C(1), Real)
		if a.Negate().Op != p.want {
			t.Fatalf("negate %v = %v, want %v", p.op, a.Negate().Op, p.want)
		}
		if a.Negate().Negate().Op != p.op {
			t.Fatal("double negation")
		}
	}
	// Semantics: at any point exactly one of a, ¬a holds.
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 200; i++ {
		op := []CmpOp{CmpLT, CmpGT, CmpLE, CmpGE, CmpEQ, CmpNE}[rng.Intn(6)]
		a := NewAtom(V("x"), op, C(float64(rng.Intn(5))), Real)
		env := Env{"x": float64(rng.Intn(5))}
		h1, _ := a.Holds(env)
		h2, _ := a.Negate().Holds(env)
		if h1 == h2 {
			t.Fatalf("atom %v and negation agree at %v", a, env)
		}
	}
}

func TestAtomHoldsTol(t *testing.T) {
	a := NewAtom(V("x"), CmpEQ, C(1), Real)
	ok, _ := a.HoldsTol(Env{"x": 1 + 1e-9}, 1e-8)
	if !ok {
		t.Fatal("equality within tolerance rejected")
	}
	ok, _ = a.HoldsTol(Env{"x": 1.1}, 1e-8)
	if ok {
		t.Fatal("equality out of tolerance accepted")
	}
}

func TestIntervalEval(t *testing.T) {
	e := mustParse(t, "x * x + y")
	box := Box{"x": interval.New(-2, 2), "y": interval.New(0, 1)}
	iv := e.Interval(box)
	if iv.Lo > 0 || iv.Hi < 5-1e-9 {
		t.Fatalf("interval = %v, want ⊇ [0,5]", iv)
	}
	// Unbound variable → whole line.
	iv = V("z").Interval(box)
	if !iv.IsWhole() {
		t.Fatalf("unbound var interval = %v", iv)
	}
}

func TestAtomIntervalHolds(t *testing.T) {
	box := Box{"x": interval.New(2, 3)}
	cases := []struct {
		src  string
		want Truth
	}{
		{"x > 1", True},
		{"x < 1", False},
		{"x > 2.5", Unknown},
		{"x >= 2", True},
		{"x <= 1.9", False},
		{"x != 10", True},
		{"x = 10", False},
		{"x = 2.5", Unknown},
	}
	for _, c := range cases {
		a, err := ParseAtom(c.src, Real)
		if err != nil {
			t.Fatal(err)
		}
		if got := a.IntervalHolds(box); got != c.want {
			t.Fatalf("%q over x∈[2,3]: %v, want %v", c.src, got, c.want)
		}
	}
}

func TestTruthKleene(t *testing.T) {
	if True.And(Unknown) != Unknown || False.And(Unknown) != False {
		t.Fatal("Kleene and")
	}
	if True.Or(Unknown) != True || False.Or(Unknown) != Unknown {
		t.Fatal("Kleene or")
	}
	if Unknown.Not() != Unknown || True.Not() != False {
		t.Fatal("Kleene not")
	}
	if True.String() != "tt" || False.String() != "ff" || Unknown.String() != "?" {
		t.Fatal("truth strings")
	}
}

func TestEqual(t *testing.T) {
	a := mustParse(t, "x + y * 2")
	b := mustParse(t, "x + y * 2")
	c := mustParse(t, "x + 2 * y")
	if !Equal(a, b) {
		t.Fatal("identical parses unequal")
	}
	if Equal(a, c) {
		t.Fatal("structurally different considered equal")
	}
}

func TestLinearFormString(t *testing.T) {
	f := NewLinearForm()
	f.Coeffs["x"] = 2
	f.Coeffs["y"] = -1
	f.Const = 3
	if got := f.String(); got != "2*x - y + 3" {
		t.Fatalf("got %q", got)
	}
	zero := NewLinearForm()
	if zero.String() != "0" {
		t.Fatalf("zero form = %q", zero.String())
	}
}

func TestBoxFromBounds(t *testing.T) {
	b := BoxFromBounds(
		map[string]float64{"x": -7},
		map[string]float64{"x": 7, "y": 3},
		[]string{"x", "y", "z"},
	)
	if b["x"] != interval.New(-7, 7) {
		t.Fatalf("x box = %v", b["x"])
	}
	if !math.IsInf(b["y"].Lo, -1) || b["y"].Hi != 3 {
		t.Fatalf("y box = %v", b["y"])
	}
	if !b["z"].IsWhole() {
		t.Fatalf("z box = %v", b["z"])
	}
}
