package expr

import (
	"fmt"
	"strings"

	"absolver/internal/interval"
)

// CmpOp is a comparison operator of an arithmetic atom.
type CmpOp int

// Comparison operators (the paper's ? ∈ {<, >, ≤, ≥, =}; ≠ additionally
// appears internally as the negation of =).
const (
	CmpLT CmpOp = iota
	CmpGT
	CmpLE
	CmpGE
	CmpEQ
	CmpNE
)

// String returns the operator's source form.
func (o CmpOp) String() string {
	switch o {
	case CmpLT:
		return "<"
	case CmpGT:
		return ">"
	case CmpLE:
		return "<="
	case CmpGE:
		return ">="
	case CmpEQ:
		return "="
	case CmpNE:
		return "!="
	}
	return fmt.Sprintf("CmpOp(%d)", int(o))
}

// Negate returns the operator of the complementary comparison.
func (o CmpOp) Negate() CmpOp {
	switch o {
	case CmpLT:
		return CmpGE
	case CmpGT:
		return CmpLE
	case CmpLE:
		return CmpGT
	case CmpGE:
		return CmpLT
	case CmpEQ:
		return CmpNE
	case CmpNE:
		return CmpEQ
	}
	panic("expr: bad CmpOp")
}

// Domain classifies the variables of an atom, following the extended DIMACS
// "c def int|real" syntax.
type Domain int

// Variable domains.
const (
	Real Domain = iota
	Int
)

// String returns the domain keyword used in the extended DIMACS format.
func (d Domain) String() string {
	if d == Int {
		return "int"
	}
	return "real"
}

// Atom is an arithmetic comparison LHS ? RHS over a domain. Atoms are the
// theory literals of AB-problems: each is bound to a Boolean variable of the
// propositional skeleton.
type Atom struct {
	LHS    Expr
	Op     CmpOp
	RHS    Expr
	Domain Domain
}

// NewAtom builds an atom over the given domain.
func NewAtom(lhs Expr, op CmpOp, rhs Expr, dom Domain) Atom {
	return Atom{LHS: lhs, Op: op, RHS: rhs, Domain: dom}
}

// Negate returns the complementary atom (¬(l < r) = l ≥ r, and so on).
func (a Atom) Negate() Atom {
	return Atom{LHS: a.LHS, Op: a.Op.Negate(), RHS: a.RHS, Domain: a.Domain}
}

// Holds evaluates the atom under env.
func (a Atom) Holds(env Env) (bool, error) {
	l, err := a.LHS.Eval(env)
	if err != nil {
		return false, err
	}
	r, err := a.RHS.Eval(env)
	if err != nil {
		return false, err
	}
	return compare(l, a.Op, r), nil
}

// HoldsTol evaluates the atom under env with absolute tolerance tol applied
// in the atom's favour; used to accept solutions computed by floating-point
// solvers.
func (a Atom) HoldsTol(env Env, tol float64) (bool, error) {
	l, err := a.LHS.Eval(env)
	if err != nil {
		return false, err
	}
	r, err := a.RHS.Eval(env)
	if err != nil {
		return false, err
	}
	switch a.Op {
	case CmpLT:
		return l < r+tol, nil
	case CmpGT:
		return l > r-tol, nil
	case CmpLE:
		return l <= r+tol, nil
	case CmpGE:
		return l >= r-tol, nil
	case CmpEQ:
		return l >= r-tol && l <= r+tol, nil
	case CmpNE:
		return l < r-tol || l > r+tol, nil
	}
	return false, fmt.Errorf("expr: bad CmpOp %v", a.Op)
}

func compare(l float64, op CmpOp, r float64) bool {
	switch op {
	case CmpLT:
		return l < r
	case CmpGT:
		return l > r
	case CmpLE:
		return l <= r
	case CmpGE:
		return l >= r
	case CmpEQ:
		return l == r
	case CmpNE:
		return l != r
	}
	return false
}

// IntervalHolds checks the atom over a box. It returns interval truth:
// definitely true, definitely false, or unknown — the 3-valued semantics
// (tt, ff, ?) of the paper's circuit representation.
func (a Atom) IntervalHolds(box Box) Truth {
	l := a.LHS.Interval(box)
	r := a.RHS.Interval(box)
	if l.IsEmpty() || r.IsEmpty() {
		// No consistent valuation exists at all within the box.
		return False
	}
	d := l.Sub(r) // atom becomes d ? 0
	switch a.Op {
	case CmpLT:
		if d.Hi < 0 {
			return True
		}
		if d.Lo >= 0 {
			return False
		}
	case CmpGT:
		if d.Lo > 0 {
			return True
		}
		if d.Hi <= 0 {
			return False
		}
	case CmpLE:
		if d.Hi <= 0 {
			return True
		}
		if d.Lo > 0 {
			return False
		}
	case CmpGE:
		if d.Lo >= 0 {
			return True
		}
		if d.Hi < 0 {
			return False
		}
	case CmpEQ:
		if d.IsPoint() && d.Lo == 0 {
			return True
		}
		if !d.Contains(0) {
			return False
		}
	case CmpNE:
		if !d.Contains(0) {
			return True
		}
		if d.IsPoint() && d.Lo == 0 {
			return False
		}
	}
	return Unknown
}

// Vars returns the sorted variables of both sides.
func (a Atom) Vars() []string {
	set := make(map[string]struct{})
	a.LHS.addVars(set)
	a.RHS.addVars(set)
	names := make([]string, 0, len(set))
	for n := range set {
		names = append(names, n)
	}
	sortStrings(names)
	return names
}

// String renders the atom in parseable infix form.
func (a Atom) String() string {
	var sb strings.Builder
	a.LHS.format(&sb, 0)
	sb.WriteByte(' ')
	sb.WriteString(a.Op.String())
	sb.WriteByte(' ')
	a.RHS.format(&sb, 0)
	return sb.String()
}

// Diff returns LHS - RHS as an expression, the normalised "left-hand side
// minus right-hand side" form ( atom ⇔ Diff() ? 0 ).
func (a Atom) Diff() Expr {
	if c, ok := a.RHS.(Const); ok && c.V == 0 {
		return a.LHS
	}
	return Sub(a.LHS, a.RHS)
}

// Truth is the 3-valued logic value used throughout ABsolver (tt, ff, ?).
type Truth int

// Truth values. Unknown is the paper's "?": further treatment is necessary.
const (
	Unknown Truth = iota
	True
	False
)

// String renders the truth value as in the paper (tt, ff, ?).
func (t Truth) String() string {
	switch t {
	case True:
		return "tt"
	case False:
		return "ff"
	}
	return "?"
}

// Not returns Kleene negation.
func (t Truth) Not() Truth {
	switch t {
	case True:
		return False
	case False:
		return True
	}
	return Unknown
}

// And returns Kleene conjunction.
func (t Truth) And(u Truth) Truth {
	if t == False || u == False {
		return False
	}
	if t == True && u == True {
		return True
	}
	return Unknown
}

// Or returns Kleene disjunction.
func (t Truth) Or(u Truth) Truth {
	if t == True || u == True {
		return True
	}
	if t == False && u == False {
		return False
	}
	return Unknown
}

// FromBool lifts a Boolean into Truth.
func FromBool(b bool) Truth {
	if b {
		return True
	}
	return False
}

// sortStrings is a local insertion sort to avoid importing sort in two
// files; len is always small (variables of one atom).
func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// An aside for Box: BoxFromBounds builds a box from per-variable bounds.
func BoxFromBounds(lo, hi map[string]float64, vars []string) Box {
	b := make(Box, len(vars))
	for _, v := range vars {
		l, okL := lo[v]
		h, okH := hi[v]
		switch {
		case okL && okH:
			b[v] = interval.New(l, h)
		case okL:
			b[v] = interval.New(l, inf)
		case okH:
			b[v] = interval.New(-inf, h)
		default:
			b[v] = interval.Whole()
		}
	}
	return b
}

var inf = interval.Whole().Hi
