package expr

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"absolver/internal/interval"
)

// genExpr builds a random expression over the variables xs with the given
// depth budget.
func genExpr(rng *rand.Rand, depth int, xs []string) Expr {
	if depth == 0 || rng.Intn(4) == 0 {
		if rng.Intn(2) == 0 {
			return C(float64(rng.Intn(21)-10) / 2)
		}
		return V(xs[rng.Intn(len(xs))])
	}
	switch rng.Intn(7) {
	case 0:
		return Add(genExpr(rng, depth-1, xs), genExpr(rng, depth-1, xs))
	case 1:
		return Sub(genExpr(rng, depth-1, xs), genExpr(rng, depth-1, xs))
	case 2:
		return Mul(genExpr(rng, depth-1, xs), genExpr(rng, depth-1, xs))
	case 3:
		return Div(genExpr(rng, depth-1, xs), genExpr(rng, depth-1, xs))
	case 4:
		return Neg{genExpr(rng, depth-1, xs)}
	case 5:
		return Sin(genExpr(rng, depth-1, xs))
	default:
		return Call{FuncAbs, genExpr(rng, depth-1, xs)}
	}
}

// TestQuickPrintParseRoundTrip: printing then parsing preserves semantics.
func TestQuickPrintParseRoundTrip(t *testing.T) {
	xs := []string{"x", "y", "z"}
	f := func(seed int64, ptSeed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := genExpr(rng, 4, xs)
		s := String(e)
		e2, err := Parse(s)
		if err != nil {
			t.Logf("unparseable print %q of %#v", s, e)
			return false
		}
		prng := rand.New(rand.NewSource(ptSeed))
		for i := 0; i < 10; i++ {
			env := Env{}
			for _, v := range xs {
				env[v] = prng.Float64()*10 - 5
			}
			v1, err1 := e.Eval(env)
			v2, err2 := e2.Eval(env)
			if (err1 == nil) != (err2 == nil) {
				return false
			}
			if err1 == nil {
				if math.IsNaN(v1) != math.IsNaN(v2) {
					return false
				}
				if !math.IsNaN(v1) && math.Abs(v1-v2) > 1e-9*(1+math.Abs(v1)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSimplifyPreservesSemantics: Simplify never changes the value on
// the common domain of definition.
func TestQuickSimplifyPreservesSemantics(t *testing.T) {
	xs := []string{"x", "y"}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := genExpr(rng, 4, xs)
		s := Simplify(e)
		for i := 0; i < 15; i++ {
			env := Env{}
			for _, v := range xs {
				env[v] = rng.Float64()*8 - 4
			}
			v1, err1 := e.Eval(env)
			v2, err2 := s.Eval(env)
			if err1 != nil || err2 != nil {
				// Simplification may remove singularities (0·(1/x)) but
				// must never introduce them where evaluation succeeded.
				if err1 == nil && err2 != nil {
					return false
				}
				continue
			}
			if math.IsNaN(v1) || math.IsNaN(v2) {
				continue
			}
			if math.Abs(v1-v2) > 1e-6*(1+math.Abs(v1)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickIntervalSoundness: point evaluation always lies within the
// interval evaluation over a box containing the point.
func TestQuickIntervalSoundness(t *testing.T) {
	xs := []string{"x", "y"}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := genExpr(rng, 3, xs)
		env := Env{}
		box := Box{}
		for _, v := range xs {
			c := rng.Float64()*8 - 4
			w := rng.Float64() * 2
			env[v] = c
			box[v] = intervalNew(c-w, c+w)
		}
		val, err := e.Eval(env)
		if err != nil || math.IsNaN(val) || math.IsInf(val, 0) {
			return true // undefined points are outside the property
		}
		iv := e.Interval(box)
		if iv.IsEmpty() {
			return false // the box contains a defined point
		}
		const slack = 1e-6
		return val >= iv.Lo-slack-1e-9*math.Abs(iv.Lo) && val <= iv.Hi+slack+1e-9*math.Abs(iv.Hi)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickLinearizeAgreesWithEval: when Linearize succeeds, the linear
// form evaluates identically to the expression.
func TestQuickLinearizeAgreesWithEval(t *testing.T) {
	xs := []string{"x", "y", "z"}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := genExpr(rng, 4, xs)
		lf, ok := Linearize(e)
		if !ok {
			return true
		}
		for i := 0; i < 10; i++ {
			env := Env{}
			for _, v := range xs {
				env[v] = rng.Float64()*10 - 5
			}
			v1, err1 := e.Eval(env)
			v2, err2 := lf.Eval(env)
			if err1 != nil {
				continue
			}
			if err2 != nil {
				return false
			}
			if math.Abs(v1-v2) > 1e-6*(1+math.Abs(v1)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickNegateExcludedMiddle: every atom and its negation partition the
// space (excluding evaluation errors).
func TestQuickNegateExcludedMiddle(t *testing.T) {
	ops := []CmpOp{CmpLT, CmpGT, CmpLE, CmpGE, CmpEQ, CmpNE}
	f := func(seed int64, opIdx uint8, x, b float64) bool {
		if math.IsNaN(x) || math.IsNaN(b) || math.IsInf(x, 0) || math.IsInf(b, 0) {
			return true
		}
		op := ops[int(opIdx)%len(ops)]
		a := NewAtom(V("x"), op, C(b), Real)
		env := Env{"x": x}
		h, err1 := a.Holds(env)
		nh, err2 := a.Negate().Holds(env)
		if err1 != nil || err2 != nil {
			return true
		}
		return h != nh
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func intervalNew(lo, hi float64) interval.Interval { return interval.New(lo, hi) }
