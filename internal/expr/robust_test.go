package expr

import (
	"math/rand"
	"strings"
	"testing"
)

// TestParseNeverPanics: arbitrary character soup must never panic the
// expression or atom parsers.
func TestParseNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	alphabet := "xyzab0123456789.+-*/()<>=! esincoqrtlg_"
	for iter := 0; iter < 4000; iter++ {
		n := rng.Intn(80)
		var sb strings.Builder
		for i := 0; i < n; i++ {
			sb.WriteByte(alphabet[rng.Intn(len(alphabet))])
		}
		src := sb.String()
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on %q: %v", src, r)
				}
			}()
			_, _ = Parse(src)
			_, _ = ParseAtom(src, Real)
		}()
	}
}
