// Package expr implements the arithmetic expression language of
// AB-problems (Sec. 2 of the paper): terms built from real-valued variables
// and constants with the operators +, -, *, / — plus the sin, cos, exp, log
// and sqrt extensions the paper describes as "straightforward" — and
// comparison atoms over such terms.
//
// The package provides evaluation over point environments, evaluation over
// interval boxes (used by the nonlinear refutation engine), symbolic
// differentiation (used by the penalty-method nonlinear solver), linearity
// analysis (used to dispatch atoms to the linear or the nonlinear solver),
// simplification, and an infix parser for the textual form used in the
// extended DIMACS format's "c def" lines.
package expr

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"absolver/internal/interval"
)

// Env assigns point values to variables.
type Env map[string]float64

// Box assigns interval domains to variables. Variables absent from the box
// are treated as unconstrained (the whole real line).
type Box map[string]interval.Interval

// Clone returns a deep copy of the box.
func (b Box) Clone() Box {
	c := make(Box, len(b))
	for k, v := range b {
		c[k] = v
	}
	return c
}

// ErrUnbound is returned by Eval when a variable has no value in the
// environment.
var ErrUnbound = errors.New("expr: unbound variable")

// ErrDomain is returned by Eval for domain errors such as division by zero
// or log of a non-positive number.
var ErrDomain = errors.New("expr: domain error")

// Op identifies a binary arithmetic operator.
type Op int

// Binary operators of the AB term language.
const (
	OpAdd Op = iota
	OpSub
	OpMul
	OpDiv
)

// String returns the operator's source form.
func (o Op) String() string {
	switch o {
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// Func identifies a unary function extension.
type Func int

// Unary function extensions (Sec. 2: "extension to other operators, such as
// sin, cos or exp is straightforward").
const (
	FuncSin Func = iota
	FuncCos
	FuncExp
	FuncLog
	FuncSqrt
	FuncAbs
)

// String returns the function's source name.
func (f Func) String() string {
	switch f {
	case FuncSin:
		return "sin"
	case FuncCos:
		return "cos"
	case FuncExp:
		return "exp"
	case FuncLog:
		return "log"
	case FuncSqrt:
		return "sqrt"
	case FuncAbs:
		return "abs"
	}
	return fmt.Sprintf("Func(%d)", int(f))
}

// funcByName maps source names to Func values for the parser.
var funcByName = map[string]Func{
	"sin":  FuncSin,
	"cos":  FuncCos,
	"exp":  FuncExp,
	"log":  FuncLog,
	"sqrt": FuncSqrt,
	"abs":  FuncAbs,
}

// Expr is a node of an arithmetic expression tree.
type Expr interface {
	// Eval computes the expression's value under env.
	Eval(env Env) (float64, error)
	// Interval computes an over-approximation of the expression's range
	// when each variable ranges over its box domain.
	Interval(box Box) interval.Interval
	// Diff returns the partial derivative with respect to name. The result
	// is not simplified; apply Simplify if a compact form is needed.
	Diff(name string) Expr
	// addVars inserts every variable occurring in the expression into set.
	addVars(set map[string]struct{})
	// format writes the source form, parenthesised as required by prec,
	// the binding strength of the enclosing context.
	format(sb *strings.Builder, prec int)
}

// Vars returns the sorted set of variable names occurring in e.
func Vars(e Expr) []string {
	set := make(map[string]struct{})
	e.addVars(set)
	names := make([]string, 0, len(set))
	for n := range set {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// String renders an expression in parseable infix form.
func String(e Expr) string {
	var sb strings.Builder
	e.format(&sb, 0)
	return sb.String()
}

// Precedence levels used by format. Higher binds tighter.
const (
	precAdd  = 1
	precMul  = 2
	precNeg  = 3
	precAtom = 4
)

// Const is a real constant.
type Const struct {
	V float64
}

// C returns the constant expression v.
func C(v float64) Const { return Const{V: v} }

// Eval implements Expr.
func (c Const) Eval(Env) (float64, error) { return c.V, nil }

// Interval implements Expr.
func (c Const) Interval(Box) interval.Interval { return interval.Point(c.V) }

// Diff implements Expr.
func (c Const) Diff(string) Expr { return Const{0} }

func (c Const) addVars(map[string]struct{}) {}

func (c Const) format(sb *strings.Builder, prec int) {
	if c.V < 0 && prec > precAdd {
		sb.WriteByte('(')
		sb.WriteString(strconv.FormatFloat(c.V, 'g', -1, 64))
		sb.WriteByte(')')
		return
	}
	sb.WriteString(strconv.FormatFloat(c.V, 'g', -1, 64))
}

// Var is a reference to a named real variable.
type Var struct {
	Name string
}

// V returns the variable expression named name.
func V(name string) Var { return Var{Name: name} }

// Eval implements Expr.
func (v Var) Eval(env Env) (float64, error) {
	x, ok := env[v.Name]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrUnbound, v.Name)
	}
	return x, nil
}

// Interval implements Expr.
func (v Var) Interval(box Box) interval.Interval {
	if iv, ok := box[v.Name]; ok {
		return iv
	}
	return interval.Whole()
}

// Diff implements Expr.
func (v Var) Diff(name string) Expr {
	if v.Name == name {
		return Const{1}
	}
	return Const{0}
}

func (v Var) addVars(set map[string]struct{}) { set[v.Name] = struct{}{} }

func (v Var) format(sb *strings.Builder, _ int) { sb.WriteString(v.Name) }

// Neg is unary negation.
type Neg struct {
	X Expr
}

// Eval implements Expr.
func (n Neg) Eval(env Env) (float64, error) {
	x, err := n.X.Eval(env)
	return -x, err
}

// Interval implements Expr.
func (n Neg) Interval(box Box) interval.Interval { return n.X.Interval(box).Neg() }

// Diff implements Expr.
func (n Neg) Diff(name string) Expr { return Neg{n.X.Diff(name)} }

func (n Neg) addVars(set map[string]struct{}) { n.X.addVars(set) }

func (n Neg) format(sb *strings.Builder, prec int) {
	if prec > precNeg {
		sb.WriteByte('(')
		defer sb.WriteByte(')')
	}
	sb.WriteByte('-')
	n.X.format(sb, precNeg+1)
}

// Bin is a binary arithmetic operation.
type Bin struct {
	Op   Op
	L, R Expr
}

// Add returns l + r.
func Add(l, r Expr) Expr { return Bin{OpAdd, l, r} }

// Sub returns l - r.
func Sub(l, r Expr) Expr { return Bin{OpSub, l, r} }

// Mul returns l * r.
func Mul(l, r Expr) Expr { return Bin{OpMul, l, r} }

// Div returns l / r.
func Div(l, r Expr) Expr { return Bin{OpDiv, l, r} }

// Sum returns the left-associated sum of terms, or the constant 0 when
// called with no terms.
func Sum(terms ...Expr) Expr {
	if len(terms) == 0 {
		return Const{0}
	}
	e := terms[0]
	for _, t := range terms[1:] {
		e = Add(e, t)
	}
	return e
}

// Eval implements Expr.
func (b Bin) Eval(env Env) (float64, error) {
	l, err := b.L.Eval(env)
	if err != nil {
		return 0, err
	}
	r, err := b.R.Eval(env)
	if err != nil {
		return 0, err
	}
	switch b.Op {
	case OpAdd:
		return l + r, nil
	case OpSub:
		return l - r, nil
	case OpMul:
		return l * r, nil
	case OpDiv:
		if r == 0 {
			return 0, fmt.Errorf("%w: division by zero", ErrDomain)
		}
		return l / r, nil
	}
	return 0, fmt.Errorf("expr: unknown operator %v", b.Op)
}

// Interval implements Expr.
func (b Bin) Interval(box Box) interval.Interval {
	l := b.L.Interval(box)
	r := b.R.Interval(box)
	switch b.Op {
	case OpAdd:
		return l.Add(r)
	case OpSub:
		return l.Sub(r)
	case OpMul:
		// x*x is a square: the dedicated rule keeps the sign information
		// the generic product rule loses when x spans zero.
		if Equal(b.L, b.R) {
			return l.Sqr()
		}
		return l.Mul(r)
	case OpDiv:
		return l.Div(r)
	}
	return interval.Whole()
}

// Diff implements Expr.
func (b Bin) Diff(name string) Expr {
	dl := b.L.Diff(name)
	dr := b.R.Diff(name)
	switch b.Op {
	case OpAdd:
		return Add(dl, dr)
	case OpSub:
		return Sub(dl, dr)
	case OpMul:
		// (lr)' = l'r + lr'
		return Add(Mul(dl, b.R), Mul(b.L, dr))
	case OpDiv:
		// (l/r)' = (l'r - lr') / r²
		return Div(Sub(Mul(dl, b.R), Mul(b.L, dr)), Mul(b.R, b.R))
	}
	return Const{0}
}

func (b Bin) addVars(set map[string]struct{}) {
	b.L.addVars(set)
	b.R.addVars(set)
}

func (b Bin) format(sb *strings.Builder, prec int) {
	var own int
	switch b.Op {
	case OpAdd, OpSub:
		own = precAdd
	default:
		own = precMul
	}
	if own < prec {
		sb.WriteByte('(')
		defer sb.WriteByte(')')
	}
	b.L.format(sb, own)
	sb.WriteByte(' ')
	sb.WriteString(b.Op.String())
	sb.WriteByte(' ')
	// Subtraction and division are left-associative: the right operand
	// must parenthesise operators of equal precedence.
	b.R.format(sb, own+1)
}

// Call applies a unary function extension.
type Call struct {
	Fn  Func
	Arg Expr
}

// Sin returns sin(x).
func Sin(x Expr) Expr { return Call{FuncSin, x} }

// Cos returns cos(x).
func Cos(x Expr) Expr { return Call{FuncCos, x} }

// Exp returns e^x.
func Exp(x Expr) Expr { return Call{FuncExp, x} }

// Log returns the natural logarithm of x.
func Log(x Expr) Expr { return Call{FuncLog, x} }

// Sqrt returns the square root of x.
func Sqrt(x Expr) Expr { return Call{FuncSqrt, x} }

// Abs returns |x|.
func Abs(x Expr) Expr { return Call{FuncAbs, x} }

// Eval implements Expr.
func (c Call) Eval(env Env) (float64, error) {
	x, err := c.Arg.Eval(env)
	if err != nil {
		return 0, err
	}
	switch c.Fn {
	case FuncSin:
		return math.Sin(x), nil
	case FuncCos:
		return math.Cos(x), nil
	case FuncExp:
		return math.Exp(x), nil
	case FuncLog:
		if x <= 0 {
			return 0, fmt.Errorf("%w: log of %g", ErrDomain, x)
		}
		return math.Log(x), nil
	case FuncSqrt:
		if x < 0 {
			return 0, fmt.Errorf("%w: sqrt of %g", ErrDomain, x)
		}
		return math.Sqrt(x), nil
	case FuncAbs:
		return math.Abs(x), nil
	}
	return 0, fmt.Errorf("expr: unknown function %v", c.Fn)
}

// Interval implements Expr.
func (c Call) Interval(box Box) interval.Interval {
	x := c.Arg.Interval(box)
	switch c.Fn {
	case FuncSin:
		return x.Sin()
	case FuncCos:
		return x.Cos()
	case FuncExp:
		return x.Exp()
	case FuncLog:
		return x.Log()
	case FuncSqrt:
		return x.Sqrt()
	case FuncAbs:
		return x.Abs()
	}
	return interval.Whole()
}

// Diff implements Expr.
func (c Call) Diff(name string) Expr {
	d := c.Arg.Diff(name)
	switch c.Fn {
	case FuncSin:
		return Mul(Cos(c.Arg), d)
	case FuncCos:
		return Neg{Mul(Sin(c.Arg), d)}
	case FuncExp:
		return Mul(Exp(c.Arg), d)
	case FuncLog:
		return Div(d, c.Arg)
	case FuncSqrt:
		return Div(d, Mul(Const{2}, Sqrt(c.Arg)))
	case FuncAbs:
		// d|u|/dx = u/|u| · u'  (undefined at 0; the chosen subgradient is 0
		// there via Eval of u/|u| erroring, which callers treat as 0).
		return Mul(Div(c.Arg, Abs(c.Arg)), d)
	}
	return Const{0}
}

func (c Call) addVars(set map[string]struct{}) { c.Arg.addVars(set) }

func (c Call) format(sb *strings.Builder, _ int) {
	sb.WriteString(c.Fn.String())
	sb.WriteByte('(')
	c.Arg.format(sb, 0)
	sb.WriteByte(')')
}

// Equal reports structural equality of two expressions.
func Equal(a, b Expr) bool {
	switch x := a.(type) {
	case Const:
		y, ok := b.(Const)
		return ok && x.V == y.V
	case Var:
		y, ok := b.(Var)
		return ok && x.Name == y.Name
	case Neg:
		y, ok := b.(Neg)
		return ok && Equal(x.X, y.X)
	case Bin:
		y, ok := b.(Bin)
		return ok && x.Op == y.Op && Equal(x.L, y.L) && Equal(x.R, y.R)
	case Call:
		y, ok := b.(Call)
		return ok && x.Fn == y.Fn && Equal(x.Arg, y.Arg)
	}
	return false
}
