package expr

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse parses an infix arithmetic expression such as
//
//	a * x + 3.5 / ( 4 - y ) + 2 * y
//
// Operators: + - * / with the usual precedence and left associativity,
// unary minus, parentheses, and calls of the unary extensions
// sin cos exp log sqrt abs. Identifiers are [A-Za-z_][A-Za-z0-9_.]*;
// numbers are decimal with optional fraction and exponent.
func Parse(src string) (Expr, error) {
	p := newParser(src)
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tokEOF {
		return nil, fmt.Errorf("expr: unexpected %q at offset %d", p.peek().text, p.peek().pos)
	}
	return e, nil
}

// ParseAtom parses a comparison such as "a*x + 3.5/(4-y) + 2*y >= 7.1"
// over the given domain.
func ParseAtom(src string, dom Domain) (Atom, error) {
	p := newParser(src)
	lhs, err := p.parseExpr()
	if err != nil {
		return Atom{}, err
	}
	t := p.next()
	var op CmpOp
	switch t.kind {
	case tokCmp:
		switch t.text {
		case "<":
			op = CmpLT
		case ">":
			op = CmpGT
		case "<=":
			op = CmpLE
		case ">=":
			op = CmpGE
		case "=", "==":
			op = CmpEQ
		case "!=", "<>":
			op = CmpNE
		}
	default:
		return Atom{}, fmt.Errorf("expr: expected comparison operator, got %q at offset %d", t.text, t.pos)
	}
	rhs, err := p.parseExpr()
	if err != nil {
		return Atom{}, err
	}
	if p.peek().kind != tokEOF {
		return Atom{}, fmt.Errorf("expr: unexpected %q at offset %d", p.peek().text, p.peek().pos)
	}
	return Atom{LHS: lhs, Op: op, RHS: rhs, Domain: dom}, nil
}

type tokKind int

const (
	tokEOF tokKind = iota
	tokNum
	tokIdent
	tokOp  // + - * /
	tokCmp // < > <= >= = == != <>
	tokLPar
	tokRPar
)

type token struct {
	kind tokKind
	text string
	pos  int
}

type parser struct {
	src  string
	toks []token
	i    int
	err  error
}

func newParser(src string) *parser {
	p := &parser{src: src}
	p.lex()
	return p
}

func (p *parser) lex() {
	s := p.src
	i := 0
	for i < len(s) {
		c := s[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c >= '0' && c <= '9' || c == '.':
			j := i
			for j < len(s) && (s[j] >= '0' && s[j] <= '9' || s[j] == '.') {
				j++
			}
			// Optional exponent.
			if j < len(s) && (s[j] == 'e' || s[j] == 'E') {
				k := j + 1
				if k < len(s) && (s[k] == '+' || s[k] == '-') {
					k++
				}
				if k < len(s) && s[k] >= '0' && s[k] <= '9' {
					for k < len(s) && s[k] >= '0' && s[k] <= '9' {
						k++
					}
					j = k
				}
			}
			p.toks = append(p.toks, token{tokNum, s[i:j], i})
			i = j
		case isIdentStart(c):
			j := i
			for j < len(s) && isIdentCont(s[j]) {
				j++
			}
			p.toks = append(p.toks, token{tokIdent, s[i:j], i})
			i = j
		case c == '+' || c == '-' || c == '*' || c == '/':
			p.toks = append(p.toks, token{tokOp, string(c), i})
			i++
		case c == '(':
			p.toks = append(p.toks, token{tokLPar, "(", i})
			i++
		case c == ')':
			p.toks = append(p.toks, token{tokRPar, ")", i})
			i++
		case c == '<' || c == '>' || c == '=' || c == '!':
			j := i + 1
			if j < len(s) && (s[j] == '=' || (c == '<' && s[j] == '>')) {
				j++
			}
			p.toks = append(p.toks, token{tokCmp, s[i:j], i})
			i = j
		default:
			if p.err == nil {
				p.err = fmt.Errorf("expr: illegal character %q at offset %d", c, i)
			}
			return
		}
	}
	p.toks = append(p.toks, token{tokEOF, "", len(s)})
}

func isIdentStart(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
}

func isIdentCont(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9' || c == '.'
}

func (p *parser) peek() token {
	if p.i >= len(p.toks) {
		return token{tokEOF, "", len(p.src)}
	}
	return p.toks[p.i]
}

func (p *parser) next() token {
	t := p.peek()
	if p.i < len(p.toks) {
		p.i++
	}
	return t
}

// parseExpr: sum of products.
func (p *parser) parseExpr() (Expr, error) {
	if p.err != nil {
		return nil, p.err
	}
	e, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != tokOp || (t.text != "+" && t.text != "-") {
			return e, nil
		}
		p.next()
		r, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		if t.text == "+" {
			e = Add(e, r)
		} else {
			e = Sub(e, r)
		}
	}
}

func (p *parser) parseTerm() (Expr, error) {
	e, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != tokOp || (t.text != "*" && t.text != "/") {
			return e, nil
		}
		p.next()
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if t.text == "*" {
			e = Mul(e, r)
		} else {
			e = Div(e, r)
		}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	t := p.peek()
	if t.kind == tokOp && t.text == "-" {
		p.next()
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		// Fold a negated literal immediately so "-3.5" parses as Const.
		if c, ok := e.(Const); ok {
			return Const{-c.V}, nil
		}
		return Neg{e}, nil
	}
	if t.kind == tokOp && t.text == "+" {
		p.next()
		return p.parseUnary()
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.next()
	switch t.kind {
	case tokNum:
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, fmt.Errorf("expr: bad number %q at offset %d", t.text, t.pos)
		}
		return Const{v}, nil
	case tokIdent:
		if fn, ok := funcByName[strings.ToLower(t.text)]; ok && p.peek().kind == tokLPar {
			p.next() // consume '('
			arg, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if tt := p.next(); tt.kind != tokRPar {
				return nil, fmt.Errorf("expr: expected ')' at offset %d, got %q", tt.pos, tt.text)
			}
			return Call{fn, arg}, nil
		}
		return Var{t.text}, nil
	case tokLPar:
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if tt := p.next(); tt.kind != tokRPar {
			return nil, fmt.Errorf("expr: expected ')' at offset %d, got %q", tt.pos, tt.text)
		}
		return e, nil
	case tokEOF:
		return nil, fmt.Errorf("expr: unexpected end of input")
	}
	return nil, fmt.Errorf("expr: unexpected %q at offset %d", t.text, t.pos)
}
