package expr

import "testing"

// FuzzParseExpr exercises the infix parser; parsed expressions must print
// to a form that re-parses.
func FuzzParseExpr(f *testing.F) {
	f.Add("a * x + 3.5 / ( 4 - y ) + 2 * y")
	f.Add("-x - -y")
	f.Add("sin(x)*cos(y)+exp(z)")
	f.Fuzz(func(t *testing.T, src string) {
		e, err := Parse(src)
		if err != nil {
			return
		}
		s := String(e)
		if _, err := Parse(s); err != nil {
			t.Fatalf("printed form %q does not re-parse: %v (from %q)", s, err, src)
		}
	})
}

// FuzzParseAtom exercises the comparison parser.
func FuzzParseAtom(f *testing.F) {
	f.Add("2*i + j < 10")
	f.Add("x != 0")
	f.Fuzz(func(t *testing.T, src string) {
		a, err := ParseAtom(src, Real)
		if err != nil {
			return
		}
		if _, err := ParseAtom(a.String(), Real); err != nil {
			t.Fatalf("printed atom %q does not re-parse: %v", a.String(), err)
		}
	})
}
