package mc

import (
	"context"
	"testing"
)

// The classic k-induction traps, pinned as regressions. See DESIGN.md §12.
//
// A subtlety these pins encode: the unrolling constrains the first window
// state to the *image* of the transition function (x@0 is defined by its
// equation over free pre-variables, not left free). That is a sound
// strengthening of textbook k-induction — the window gains one step of
// reachability information — so properties may prove one depth earlier
// than the textbook count. stay2 below is the canonical example: textbook
// 2-inductive, image 1-inductive.

// TestImageStrengtheningProvesEarly: x is 2 at init and 2 forever; "x <> 0"
// is textbook-2-inductive (a free window start x = 1 steps to 0, so plain
// 1-induction fails). Under the image encoding x@0 = f(pre x) and 1 is not
// in the image of f ({2} ∪ {v−1 : v ≠ 2} excludes 1), so the step query is
// already unsatisfiable at depth 1. Pinned at exactly K = 1: a Proved at
// K = 0 means the init constraint leaked into the step premise, K = 2 means
// the image constraint was lost.
func TestImageStrengtheningProvesEarly(t *testing.T) {
	src := `node stay2(tick: bool) returns (ok: bool);
var x: int;
let
  x = 2 -> (if pre x = 2 then 2 else pre x - 1);
  ok = x <> 0;
tel;
`
	res, err := Check(context.Background(), parse(t, src), Options{MaxDepth: 8})
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	if res.Verdict != Proved {
		t.Fatalf("verdict %s (reason %q), want proved", res.Verdict, res.Reason)
	}
	if res.K != 1 {
		t.Fatalf("proved at K = %d, want exactly 1 (0 = init leaked into the step premise, 2 = image constraint lost)", res.K)
	}
	if !res.Induction {
		t.Error("Proved verdict without induction flag")
	}
}

// stay3Src holds x at 3; any other value counts down by 1. "x <> 0" is
// invariant. The bad window 1 → 0 refutes depth 1 (1 is in the image of
// f: f(2) = 1), and depth 2 needs the predecessor x@0 = 2, which is NOT
// in the image ({3} ∪ {v−1 : v ≠ 3} excludes 2) — so the property is
// exactly 2-inductive under the image encoding (textbook 3-inductive).
const stay3Src = `node stay3(tick: bool) returns (ok: bool);
var x: int;
let
  x = 3 -> (if pre x = 3 then 3 else pre x - 1);
  ok = x <> 0;
tel;
`

// TestInductionFallsBackToDeeperK: the checker must fail induction at
// depth 1 and deepen to exactly K = 2 — a Proved at K < 2 means the step
// premise is too strong, a miss at 2 means the window encoding is broken.
func TestInductionFallsBackToDeeperK(t *testing.T) {
	res, err := Check(context.Background(), parse(t, stay3Src), Options{MaxDepth: 8})
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	if res.Verdict != Proved {
		t.Fatalf("verdict %s (reason %q), want proved", res.Verdict, res.Reason)
	}
	if res.K != 2 {
		t.Fatalf("proved at K = %d, want exactly 2 (earlier = unsound premise, later = lost precision)", res.K)
	}
}

// TestInvariantButNeverInductive: x stays even (0, 2, 4, …), so "x <> 3"
// is invariant — but for every k a window full of odd values satisfies the
// premise and steps to 3, so no k-induction depth proves it. The checker
// must keep answering BoundReached, never Proved.
func TestInvariantButNeverInductive(t *testing.T) {
	src := `node evens(tick: bool) returns (ok: bool);
var x: int; even: bool;
let
  even = true -> not pre even;
  x = 0 -> (if pre even then pre x + 2 else pre x);
  ok = x <> 3;
tel;
`
	for _, depth := range []int{2, 5, 8} {
		res, err := Check(context.Background(), parse(t, src), Options{MaxDepth: depth})
		if err != nil {
			t.Fatalf("Check depth %d: %v", depth, err)
		}
		if res.Verdict != BoundReached || res.K != depth {
			t.Fatalf("depth %d: verdict %s at %d, want bound_reached at %d", depth, res.Verdict, res.K, depth)
		}
	}
}

// TestInductionStepMustNotAssumeInit: "x <= 3" with x counting 0, 1, 2, …
// is falsified at instant 4. An induction step whose premise leaks the
// init constraint is unsatisfiable at depth 0 already (x = 0 refutes
// ¬(x ≤ 3)), so a leaky checker reports Proved{0} before BMC ever reaches
// the violation. The sound verdict is Falsified at 4.
func TestInductionStepMustNotAssumeInit(t *testing.T) {
	src := `node count(tick: bool) returns (ok: bool);
var x: int;
let
  x = 0 -> pre x + 1;
  ok = x <= 3;
tel;
`
	res, err := Check(context.Background(), parse(t, src), Options{MaxDepth: 10})
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	if res.Verdict != Falsified || res.K != 4 {
		t.Fatalf("verdict %s at %d, want falsified at 4 (Proved here means init leaked into the step premise)", res.Verdict, res.K)
	}
	if !res.Certified {
		t.Fatal("counterexample trace failed replay")
	}
}

// TestProvedConsistentAcrossBounds: once a property is proved at K, any
// larger bound must agree (and a smaller-than-K bound must not claim it).
func TestProvedConsistentAcrossBounds(t *testing.T) {
	res, err := Check(context.Background(), parse(t, stay3Src), Options{MaxDepth: 1})
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	if res.Verdict != BoundReached {
		t.Fatalf("bound 1 below the induction depth: verdict %s, want bound_reached", res.Verdict)
	}
	res, err = Check(context.Background(), parse(t, stay3Src), Options{MaxDepth: 20})
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	if res.Verdict != Proved || res.K != 2 {
		t.Fatalf("bound 20: verdict %s at %d, want proved at 2", res.Verdict, res.K)
	}
}
