package mc

import (
	"fmt"
	"math"

	"absolver/internal/core"
	"absolver/internal/expr"
	"absolver/internal/lustre"
)

// unroller encodes a stateful Lustre node into timestep-indexed AB-problems
// over one core.Session. Each instant t gets its own copy of every flow:
// Boolean flows become session literals defined by Tseitin clauses, numeric
// flows become arithmetic variables name@t pinned by an asserted defining
// equality. The stateful operators connect adjacent copies:
//
//	pre e  at t>0  →  the encoding of e at t-1
//	pre e  at t=0  →  a free variable (the unknown pre-window state), forced
//	                  to 0/false when vInit is assumed
//	a -> b at t=0  →  if vInit then a else b
//	a -> b at t>0  →  b
//
// vInit is a free assumption literal meaning "instant 0 of this unrolling
// is the initial instant of the execution". BMC base cases assume it;
// k-induction step cases leave it free, so their windows may start anywhere
// — including at 0, which keeps the step check a strict generalisation.
//
// All clauses of step t are asserted inside the frame pushed for depth t;
// bindings and the frames are monotone for the lifetime of a Check call.
type unroller struct {
	sess   *core.Session
	node   *lustre.Node
	types  map[string]lustre.Type
	eqs    map[string]lustre.Expr
	inputs map[string]bool
	bounds map[string][2]float64

	vInit   int
	litTrue int

	steps  []*stepEnv
	preB   map[string]int       // pre-key → free Boolean literal for the pre-window state
	preN   map[string]expr.Expr // pre-key → free arithmetic variable
	varInt map[string]bool      // arithmetic variable name → integer-typed
	busy   map[string]bool
	auxSeq int
}

// stepEnv caches one instant's encodings.
type stepEnv struct {
	boolFlow map[string]int
	numFlow  map[string]expr.Expr
}

func newUnroller(sess *core.Session, prog *lustre.Program, bounds map[string][2]float64) (*unroller, error) {
	n := prog.Main()
	if n == nil {
		return nil, fmt.Errorf("mc: empty program")
	}
	ur := &unroller{
		sess:   sess,
		node:   n,
		types:  map[string]lustre.Type{},
		eqs:    map[string]lustre.Expr{},
		inputs: map[string]bool{},
		bounds: bounds,
		preB:   map[string]int{},
		preN:   map[string]expr.Expr{},
		varInt: map[string]bool{},
		busy:   map[string]bool{},
	}
	for _, d := range n.Inputs {
		ur.types[d.Name] = d.Type
		ur.inputs[d.Name] = true
	}
	for _, d := range n.Outputs {
		ur.types[d.Name] = d.Type
	}
	for _, d := range n.Locals {
		ur.types[d.Name] = d.Type
	}
	for _, eq := range n.Equations {
		if ur.inputs[eq.Target] {
			return nil, fmt.Errorf("mc: equation for input %s", eq.Target)
		}
		if _, ok := ur.types[eq.Target]; !ok {
			return nil, fmt.Errorf("mc: equation for undeclared flow %s", eq.Target)
		}
		if _, dup := ur.eqs[eq.Target]; dup {
			return nil, fmt.Errorf("mc: multiple equations for %s", eq.Target)
		}
		ur.eqs[eq.Target] = eq.Rhs
	}
	for name := range ur.types {
		if !ur.inputs[name] {
			if _, ok := ur.eqs[name]; !ok {
				return nil, fmt.Errorf("mc: no equation for flow %s", name)
			}
		}
	}
	// Base-level bookkeeping literals, allocated before any frame exists so
	// they are permanent.
	ur.vInit = sess.NewVar()
	ur.litTrue = sess.NewVar()
	if err := sess.AssertClause(ur.litTrue); err != nil {
		return nil, err
	}
	return ur, nil
}

// encodeStep materialises instant t (must be called with t == len(steps),
// inside the frame pushed for depth t). Every declared flow is encoded so
// the counterexample trace is complete even for flows the property never
// reads.
func (ur *unroller) encodeStep(t int) error {
	if t != len(ur.steps) {
		return fmt.Errorf("mc: encodeStep(%d) out of order (have %d steps)", t, len(ur.steps))
	}
	ur.steps = append(ur.steps, &stepEnv{
		boolFlow: map[string]int{},
		numFlow:  map[string]expr.Expr{},
	})
	for _, d := range ur.node.Inputs {
		if err := ur.encodeFlow(d.Name, t); err != nil {
			return err
		}
	}
	for _, d := range ur.node.Locals {
		if err := ur.encodeFlow(d.Name, t); err != nil {
			return err
		}
	}
	for _, d := range ur.node.Outputs {
		if err := ur.encodeFlow(d.Name, t); err != nil {
			return err
		}
	}
	return nil
}

func (ur *unroller) encodeFlow(name string, t int) error {
	if ur.types[name] == lustre.TBool {
		_, err := ur.boolFlow(name, t)
		return err
	}
	_, err := ur.numFlow(name, t)
	return err
}

// propLit returns the literal of the (Boolean) property flow at instant t.
func (ur *unroller) propLit(name string, t int) (int, error) {
	return ur.boolFlow(name, t)
}

func stepVar(name string, t int) string { return fmt.Sprintf("%s@%d", name, t) }

func (ur *unroller) boolFlow(name string, t int) (int, error) {
	env := ur.steps[t]
	if l, ok := env.boolFlow[name]; ok {
		return l, nil
	}
	if ur.inputs[name] {
		l := ur.sess.NewVar()
		env.boolFlow[name] = l
		return l, nil
	}
	rhs, ok := ur.eqs[name]
	if !ok {
		return 0, fmt.Errorf("mc: no equation for Boolean flow %s", name)
	}
	key := stepVar(name, t)
	if ur.busy[key] {
		return 0, fmt.Errorf("mc: cyclic definition of %s", name)
	}
	ur.busy[key] = true
	defer delete(ur.busy, key)
	l, err := ur.encBool(rhs, t)
	if err != nil {
		return 0, err
	}
	env.boolFlow[name] = l
	return l, nil
}

func (ur *unroller) numFlow(name string, t int) (expr.Expr, error) {
	env := ur.steps[t]
	if e, ok := env.numFlow[name]; ok {
		return e, nil
	}
	vn := stepVar(name, t)
	if ur.inputs[name] {
		v := expr.V(vn)
		ur.varInt[vn] = ur.types[name] == lustre.TInt
		if b, ok := ur.bounds[name]; ok {
			if err := ur.sess.SetBounds(vn, b[0], b[1]); err != nil {
				return nil, err
			}
		}
		env.numFlow[name] = v
		return v, nil
	}
	rhs, ok := ur.eqs[name]
	if !ok {
		return nil, fmt.Errorf("mc: no equation for numeric flow %s", name)
	}
	if ur.busy[vn] {
		return nil, fmt.Errorf("mc: cyclic definition of %s", name)
	}
	ur.busy[vn] = true
	defer delete(ur.busy, vn)

	v := expr.V(vn)
	ur.varInt[vn] = ur.types[name] == lustre.TInt
	e, err := ur.encNum(rhs, t)
	if err != nil {
		return nil, err
	}
	if _, err := ur.sess.Assert(expr.NewAtom(v, expr.CmpEQ, e, ur.domainOf(v, e))); err != nil {
		return nil, err
	}
	env.numFlow[name] = v
	return v, nil
}

// encBool encodes a Boolean expression at instant t as a session literal.
func (ur *unroller) encBool(e lustre.Expr, t int) (int, error) {
	switch x := e.(type) {
	case lustre.BoolLit:
		if x.V {
			return ur.litTrue, nil
		}
		return -ur.litTrue, nil
	case lustre.Ref:
		if ty, ok := ur.types[x.Name]; !ok || ty != lustre.TBool {
			return 0, fmt.Errorf("mc: %s used as bool but not declared bool", x.Name)
		}
		return ur.boolFlow(x.Name, t)
	case lustre.Unary:
		switch x.Op {
		case "not":
			l, err := ur.encBool(x.X, t)
			if err != nil {
				return 0, err
			}
			return -l, nil
		case "pre":
			if t > 0 {
				return ur.encBool(x.X, t-1)
			}
			key := lustre.FormatExpr(x.X)
			if l, ok := ur.preB[key]; ok {
				return l, nil
			}
			l := ur.sess.NewVar()
			ur.preB[key] = l
			// The evaluator's initial pre-value is false; pin the same
			// under vInit so base-case traces replay exactly.
			if err := ur.sess.AssertClause(-ur.vInit, -l); err != nil {
				return 0, err
			}
			return l, nil
		}
		return 0, fmt.Errorf("mc: unary %q is not Boolean", x.Op)
	case lustre.Binary:
		switch x.Op {
		case "->":
			if t > 0 {
				return ur.encBool(x.R, t)
			}
			init, err := ur.encBool(x.L, 0)
			if err != nil {
				return 0, err
			}
			step, err := ur.encBool(x.R, 0)
			if err != nil {
				return 0, err
			}
			return ur.boolIte(ur.vInit, init, step)
		case "and", "or", "xor", "=>":
			a, err := ur.encBool(x.L, t)
			if err != nil {
				return 0, err
			}
			b, err := ur.encBool(x.R, t)
			if err != nil {
				return 0, err
			}
			return ur.boolGate(x.Op, a, b)
		case "<", "<=", ">", ">=", "=", "<>":
			if (x.Op == "=" || x.Op == "<>") && ur.isBoolOperand(x.L) && ur.isBoolOperand(x.R) {
				a, err := ur.encBool(x.L, t)
				if err != nil {
					return 0, err
				}
				b, err := ur.encBool(x.R, t)
				if err != nil {
					return 0, err
				}
				g, err := ur.boolGate("xor", a, b)
				if err != nil {
					return 0, err
				}
				if x.Op == "=" {
					return -g, nil
				}
				return g, nil
			}
			l, err := ur.encNum(x.L, t)
			if err != nil {
				return 0, err
			}
			r, err := ur.encNum(x.R, t)
			if err != nil {
				return 0, err
			}
			op := map[string]expr.CmpOp{
				"<": expr.CmpLT, "<=": expr.CmpLE, ">": expr.CmpGT,
				">=": expr.CmpGE, "=": expr.CmpEQ, "<>": expr.CmpNE,
			}[x.Op]
			return ur.sess.Bind(expr.NewAtom(l, op, r, ur.domainOf(l, r)))
		}
		return 0, fmt.Errorf("mc: operator %q is not Boolean", x.Op)
	case lustre.Ite:
		c, err := ur.encBool(x.Cond, t)
		if err != nil {
			return 0, err
		}
		a, err := ur.encBool(x.Then, t)
		if err != nil {
			return 0, err
		}
		b, err := ur.encBool(x.Else, t)
		if err != nil {
			return 0, err
		}
		return ur.boolIte(c, a, b)
	}
	return 0, fmt.Errorf("mc: expression %T is not Boolean", e)
}

// boolGate Tseitin-encodes g ↔ (a op b) and returns g.
func (ur *unroller) boolGate(op string, a, b int) (int, error) {
	g := ur.sess.NewVar()
	var clauses [][]int
	switch op {
	case "and":
		clauses = [][]int{{-g, a}, {-g, b}, {g, -a, -b}}
	case "or":
		clauses = [][]int{{g, -a}, {g, -b}, {-g, a, b}}
	case "xor":
		clauses = [][]int{{-g, a, b}, {-g, -a, -b}, {g, -a, b}, {g, a, -b}}
	case "=>":
		clauses = [][]int{{g, a}, {g, -b}, {-g, -a, b}}
	default:
		return 0, fmt.Errorf("mc: unknown gate %q", op)
	}
	for _, cl := range clauses {
		if err := ur.sess.AssertClause(cl...); err != nil {
			return 0, err
		}
	}
	return g, nil
}

// boolIte Tseitin-encodes g ↔ if c then a else b and returns g.
func (ur *unroller) boolIte(c, a, b int) (int, error) {
	g := ur.sess.NewVar()
	for _, cl := range [][]int{
		{-g, -c, a}, {-g, c, b}, {g, -c, -a}, {g, c, -b},
	} {
		if err := ur.sess.AssertClause(cl...); err != nil {
			return 0, err
		}
	}
	return g, nil
}

func (ur *unroller) isBoolOperand(e lustre.Expr) bool {
	switch x := e.(type) {
	case lustre.BoolLit:
		return true
	case lustre.Ref:
		return ur.types[x.Name] == lustre.TBool
	case lustre.Unary:
		if x.Op == "pre" {
			return ur.isBoolOperand(x.X)
		}
		return x.Op == "not"
	case lustre.Binary:
		switch x.Op {
		case "and", "or", "xor", "=>", "<", "<=", ">", ">=":
			return true
		case "->":
			return ur.isBoolOperand(x.R)
		}
	case lustre.Ite:
		return ur.isBoolOperand(x.Then)
	}
	return false
}

// encNum encodes a numeric expression at instant t.
func (ur *unroller) encNum(e lustre.Expr, t int) (expr.Expr, error) {
	switch x := e.(type) {
	case lustre.Num:
		return expr.C(x.V), nil
	case lustre.Ref:
		if ty, ok := ur.types[x.Name]; ok && ty == lustre.TBool {
			return nil, fmt.Errorf("mc: %s used numerically but declared bool", x.Name)
		}
		return ur.numFlow(x.Name, t)
	case lustre.Unary:
		switch x.Op {
		case "-":
			inner, err := ur.encNum(x.X, t)
			if err != nil {
				return nil, err
			}
			return expr.Neg{X: inner}, nil
		case "pre":
			if t > 0 {
				return ur.encNum(x.X, t-1)
			}
			key := lustre.FormatExpr(x.X)
			if v, ok := ur.preN[key]; ok {
				return v, nil
			}
			ur.auxSeq++
			vn := fmt.Sprintf("pre$%d", ur.auxSeq)
			v := expr.V(vn)
			ur.varInt[vn] = ur.numIsInt(x.X)
			ur.preN[key] = v
			// Pin the evaluator's default initial pre-value under vInit.
			zero, err := ur.sess.Bind(expr.NewAtom(v, expr.CmpEQ, expr.C(0), ur.domainOf(v)))
			if err != nil {
				return nil, err
			}
			if err := ur.sess.AssertClause(-ur.vInit, zero); err != nil {
				return nil, err
			}
			return v, nil
		}
		return nil, fmt.Errorf("mc: unary %q is not numeric", x.Op)
	case lustre.Binary:
		if x.Op == "->" {
			if t > 0 {
				return ur.encNum(x.R, t)
			}
			init, err := ur.encNum(x.L, 0)
			if err != nil {
				return nil, err
			}
			step, err := ur.encNum(x.R, 0)
			if err != nil {
				return nil, err
			}
			return ur.numIte(ur.vInit, init, step, t)
		}
		var op expr.Op
		switch x.Op {
		case "+":
			op = expr.OpAdd
		case "-":
			op = expr.OpSub
		case "*":
			op = expr.OpMul
		case "/":
			op = expr.OpDiv
		default:
			return nil, fmt.Errorf("mc: operator %q is not numeric", x.Op)
		}
		l, err := ur.encNum(x.L, t)
		if err != nil {
			return nil, err
		}
		r, err := ur.encNum(x.R, t)
		if err != nil {
			return nil, err
		}
		return expr.Bin{Op: op, L: l, R: r}, nil
	case lustre.Ite:
		c, err := ur.encBool(x.Cond, t)
		if err != nil {
			return nil, err
		}
		a, err := ur.encNum(x.Then, t)
		if err != nil {
			return nil, err
		}
		b, err := ur.encNum(x.Else, t)
		if err != nil {
			return nil, err
		}
		return ur.numIte(c, a, b, t)
	case lustre.Call:
		arg, err := ur.encNum(x.Arg, t)
		if err != nil {
			return nil, err
		}
		fn, ok := map[string]expr.Func{
			"sin": expr.FuncSin, "cos": expr.FuncCos, "exp": expr.FuncExp,
			"log": expr.FuncLog, "sqrt": expr.FuncSqrt, "abs": expr.FuncAbs,
		}[x.Fn]
		if !ok {
			return nil, fmt.Errorf("mc: unknown function %q", x.Fn)
		}
		return expr.Call{Fn: fn, Arg: arg}, nil
	}
	return nil, fmt.Errorf("mc: expression %T is not numeric", e)
}

// numIte introduces an auxiliary variable v with the guarded definition
// (c → v = a) ∧ (¬c → v = b).
func (ur *unroller) numIte(c int, a, b expr.Expr, t int) (expr.Expr, error) {
	ur.auxSeq++
	vn := fmt.Sprintf("ite$%d@%d", ur.auxSeq, t)
	v := expr.V(vn)
	dom := ur.domainOf(a, b)
	ur.varInt[vn] = dom == expr.Int
	la, err := ur.sess.Bind(expr.NewAtom(v, expr.CmpEQ, a, dom))
	if err != nil {
		return nil, err
	}
	lb, err := ur.sess.Bind(expr.NewAtom(v, expr.CmpEQ, b, dom))
	if err != nil {
		return nil, err
	}
	if err := ur.sess.AssertClause(-c, la); err != nil {
		return nil, err
	}
	if err := ur.sess.AssertClause(c, lb); err != nil {
		return nil, err
	}
	return v, nil
}

// numIsInt reports whether a numeric Lustre expression is integer-typed
// (every referenced flow declared int).
func (ur *unroller) numIsInt(e lustre.Expr) bool {
	switch x := e.(type) {
	case lustre.Num:
		return x.V == math.Trunc(x.V)
	case lustre.Ref:
		return ur.types[x.Name] == lustre.TInt
	case lustre.Unary:
		return ur.numIsInt(x.X)
	case lustre.Binary:
		if x.Op == "/" {
			return false
		}
		return ur.numIsInt(x.L) && ur.numIsInt(x.R)
	case lustre.Ite:
		return ur.numIsInt(x.Then) && ur.numIsInt(x.Else)
	}
	return false
}

// domainOf mirrors the combinational extractor: Int when every variable of
// the expressions is integer-typed, Real otherwise.
func (ur *unroller) domainOf(es ...expr.Expr) expr.Domain {
	for _, e := range es {
		for _, v := range expr.Vars(e) {
			if !ur.varInt[v] {
				return expr.Real
			}
		}
	}
	return expr.Int
}
