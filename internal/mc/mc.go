// Package mc is the model-checking frontend: bounded model checking plus
// k-induction over the stateful mini-Lustre dialect (and Simulink models
// via lustre.FromSimulink). The transition relation is unrolled into
// timestep-indexed AB-problems over one warm core.Session — one push frame
// per depth, the init/step distinction carried by an assumption literal —
// so every depth pays only for the newly encoded instant and the Boolean
// and theory state learned at shallower depths is reused.
//
// At each depth d the checker runs
//
//	base d:  assume  vInit ∧ p@0 ∧ … ∧ p@d-1 ∧ ¬p@d
//	step d:  assume          p@0 ∧ … ∧ p@d-1 ∧ ¬p@d     (vInit free)
//
// A satisfiable base is a concrete counterexample of minimal depth d
// (Falsified). An unsatisfiable step at depth d is a k-induction proof
// (Proved with K = d): together with the base cases 0..d-1 it rules out a
// minimal counterexample at any depth — see DESIGN.md §12 for the
// soundness argument, including why vInit must stay free in the step case.
// If neither fires by MaxDepth, the verdict is BoundReached.
package mc

import (
	"context"
	"fmt"
	"math"
	"time"

	"absolver/internal/core"
	"absolver/internal/lustre"
	"absolver/internal/simulink"
)

// Verdict is the outcome of a Check call.
type Verdict string

// Verdicts.
const (
	Proved       Verdict = "proved"
	Falsified    Verdict = "falsified"
	BoundReached Verdict = "bound_reached"
)

// Trace is a concrete counterexample: one input valuation per instant,
// Booleans encoded 0/1 — directly replayable through lustre.Run and, for
// programs converted from block diagrams, through simulink.Simulate one
// instant at a time.
type Trace struct {
	Property string               `json:"property"`
	Step     int                  `json:"step"` // instant at which the property fails
	Inputs   []map[string]float64 `json:"inputs"`
}

// Result is the outcome of a Check call.
type Result struct {
	Verdict Verdict
	// K is the violation instant (Falsified), the induction depth (Proved),
	// or the deepest fully-checked depth (BoundReached; -1 when not even
	// depth 0 completed).
	K     int
	Trace *Trace // non-nil iff Falsified
	// Certified reports that the trace was replayed through the Lustre
	// evaluator and confirmed to violate the property at instant K. Replay
	// runs for every falsification; for programs with real-valued flows a
	// mismatch within solver tolerance clears Certified instead of failing.
	Certified bool
	// Reason explains a BoundReached verdict beyond depth exhaustion
	// (timeout, theory incompleteness).
	Reason string
	// Depths is the number of base depths explored (counting depth 0).
	Depths int
	// Induction reports whether a Proved verdict came from a k-induction
	// step check (always true for Proved).
	Induction bool
	Stats     core.Stats
}

// DepthEvent reports one solver phase at one depth to Options.Progress.
type DepthEvent struct {
	Depth  int           `json:"depth"`
	Phase  string        `json:"phase"` // "base" or "induction"
	Status string        `json:"status"`
	Wall   time.Duration `json:"-"`
}

// Options configures Check.
type Options struct {
	// Property names the Boolean flow to verify (G property). Empty selects
	// the node's sole Boolean output.
	Property string
	// MaxDepth is the deepest instant to unroll (inclusive; default 10).
	MaxDepth int
	// NoInduction disables the k-induction step checks, leaving pure BMC:
	// the checker can then falsify or exhaust the bound, never prove.
	NoInduction bool
	// Cold rebuilds a fresh session per depth instead of reusing one warm
	// session — the ablation baseline for the BENCH_8 table.
	Cold bool
	// InputBounds restricts numeric inputs to [lo, hi] as background
	// theory. Inputs without an entry are unconstrained.
	InputBounds map[string][2]float64
	// Progress, when set, receives one event per solver phase per depth.
	Progress func(DepthEvent)
	// Config tunes the underlying engine. RestartBoolean is rejected (the
	// unrolling lives in one session). A zero Config enables model checking
	// of sat verdicts (CheckModels).
	Config *core.Config
}

func (o *Options) maxDepth() int {
	if o.MaxDepth > 0 {
		return o.MaxDepth
	}
	return 10
}

func (o *Options) config() core.Config {
	if o.Config != nil {
		return *o.Config
	}
	return core.Config{CheckModels: true}
}

// resolveProperty picks and validates the property flow.
func resolveProperty(n *lustre.Node, name string) (string, error) {
	types := map[string]lustre.Type{}
	for _, d := range n.Inputs {
		types[d.Name] = d.Type
	}
	for _, d := range n.Outputs {
		types[d.Name] = d.Type
	}
	for _, d := range n.Locals {
		types[d.Name] = d.Type
	}
	if name == "" {
		for _, d := range n.Outputs {
			if d.Type == lustre.TBool {
				if name != "" {
					return "", fmt.Errorf("mc: node %s has several Boolean outputs; name the property with -prop", n.Name)
				}
				name = d.Name
			}
		}
		if name == "" {
			return "", fmt.Errorf("mc: node %s has no Boolean output to use as property", n.Name)
		}
		return name, nil
	}
	ty, ok := types[name]
	if !ok {
		return "", fmt.Errorf("mc: property flow %s is not declared", name)
	}
	if ty != lustre.TBool {
		return "", fmt.Errorf("mc: property flow %s is %s, want bool", name, ty)
	}
	return name, nil
}

// CheckModel verifies a Simulink block diagram by converting it through
// lustre.FromSimulink first.
func CheckModel(ctx context.Context, m *simulink.Model, opts Options) (Result, error) {
	prog, err := lustre.FromSimulink(m)
	if err != nil {
		return Result{}, err
	}
	return Check(ctx, prog, opts)
}

// Check verifies G(property) on the program's main node up to
// opts.MaxDepth, interleaving BMC base cases with k-induction step cases.
func Check(ctx context.Context, prog *lustre.Program, opts Options) (Result, error) {
	n := prog.Main()
	if n == nil {
		return Result{}, fmt.Errorf("mc: empty program")
	}
	prop, err := resolveProperty(n, opts.Property)
	if err != nil {
		return Result{}, err
	}
	opts.Property = prop
	if opts.Cold {
		return checkCold(ctx, prog, opts)
	}

	sess, err := core.NewSession(core.NewProblem(), opts.config())
	if err != nil {
		return Result{}, err
	}
	ur, err := newUnroller(sess, prog, opts.InputBounds)
	if err != nil {
		return Result{}, err
	}

	res := Result{Verdict: BoundReached, K: -1}
	var propLits []int
	for d := 0; d <= opts.maxDepth(); d++ {
		sess.Push()
		if err := ur.encodeStep(d); err != nil {
			return res, err
		}
		pd, err := ur.propLit(prop, d)
		if err != nil {
			return res, err
		}

		done, err := checkDepth(ctx, sess, ur, prog, &opts, propLits, pd, d, &res)
		if done || err != nil {
			res.Stats = sess.Stats()
			return res, err
		}
		propLits = append(propLits, pd)
	}
	res.Stats = sess.Stats()
	return res, nil
}

// checkDepth runs the base and (optionally) induction phase for depth d,
// mutating res. It returns done=true when a final verdict was reached.
func checkDepth(ctx context.Context, sess *core.Session, ur *unroller, prog *lustre.Program, opts *Options, propLits []int, pd, d int, res *Result) (bool, error) {
	prop := opts.Property

	// Base case: a run from the initial instant that keeps the property up
	// to d-1 and breaks it at d.
	assumps := make([]int, 0, len(propLits)+2)
	assumps = append(assumps, ur.vInit)
	assumps = append(assumps, propLits...)
	assumps = append(assumps, -pd)
	r, err := sess.SolveUnderAssumptions(ctx, assumps)
	report(opts, DepthEvent{Depth: d, Phase: "base", Status: statusName(r.Status, err), Wall: r.Stats.WallTime})
	if err != nil {
		res.Reason = fmt.Sprintf("base check at depth %d: %v", d, err)
		return true, err
	}
	switch r.Status {
	case core.StatusSat:
		res.Verdict = Falsified
		res.K = d
		res.Depths = d + 1
		res.Trace = extractTrace(ur, r.Model, prop, d, opts.InputBounds)
		res.Certified, err = certify(prog, res.Trace, exactProgram(prog))
		return true, err
	case core.StatusUnknown:
		res.Reason = fmt.Sprintf("base check at depth %d returned unknown (incomplete theory)", d)
		return true, nil
	}
	res.K = d
	res.Depths = d + 1

	// Induction step: the same window with a free start. Unsat means no
	// reachable window of length d+1 can end in a violation.
	if !opts.NoInduction {
		r, err = sess.SolveUnderAssumptions(ctx, assumps[1:])
		report(opts, DepthEvent{Depth: d, Phase: "induction", Status: statusName(r.Status, err), Wall: r.Stats.WallTime})
		if err != nil {
			res.Reason = fmt.Sprintf("induction check at depth %d: %v", d, err)
			return true, err
		}
		if r.Status == core.StatusUnsat {
			res.Verdict = Proved
			res.Induction = true
			return true, nil
		}
	}
	return false, nil
}

// checkCold is the ablation path: a fresh session re-encodes instants 0..d
// for every depth d, paying the full unrolling cost each time.
func checkCold(ctx context.Context, prog *lustre.Program, opts Options) (Result, error) {
	res := Result{Verdict: BoundReached, K: -1}
	for d := 0; d <= opts.maxDepth(); d++ {
		sess, err := core.NewSession(core.NewProblem(), opts.config())
		if err != nil {
			return res, err
		}
		ur, err := newUnroller(sess, prog, opts.InputBounds)
		if err != nil {
			return res, err
		}
		var propLits []int
		for t := 0; t <= d; t++ {
			sess.Push()
			if err := ur.encodeStep(t); err != nil {
				return res, err
			}
			if t < d {
				pt, err := ur.propLit(opts.Property, t)
				if err != nil {
					return res, err
				}
				propLits = append(propLits, pt)
			}
		}
		pd, err := ur.propLit(opts.Property, d)
		if err != nil {
			return res, err
		}
		prior := res.Stats
		done, err := checkDepth(ctx, sess, ur, prog, &opts, propLits, pd, d, &res)
		res.Stats = addStats(prior, sess.Stats())
		if done || err != nil {
			return res, err
		}
	}
	return res, nil
}

func report(opts *Options, ev DepthEvent) {
	if opts.Progress != nil {
		opts.Progress(ev)
	}
}

func statusName(s core.Status, err error) string {
	if err != nil {
		return "error"
	}
	switch s {
	case core.StatusSat:
		return "sat"
	case core.StatusUnsat:
		return "unsat"
	}
	return "unknown"
}

// extractTrace reads the per-instant input valuation out of a sat model.
// Integer inputs are rounded and all bounded inputs clamped: an input the
// unrolling never referenced is unconstrained in the model (the theory
// witness may omit it or give a fractional value), and its value cannot
// affect the violation.
func extractTrace(ur *unroller, m *core.Model, prop string, step int, bounds map[string][2]float64) *Trace {
	tr := &Trace{Property: prop, Step: step}
	for t := 0; t <= step; t++ {
		in := map[string]float64{}
		for _, d := range ur.node.Inputs {
			if d.Type == lustre.TBool {
				if lit, ok := ur.steps[t].boolFlow[d.Name]; ok && m != nil && lit-1 < len(m.Bool) && m.Bool[lit-1] {
					in[d.Name] = 1
				} else {
					in[d.Name] = 0
				}
				continue
			}
			var v float64
			if m != nil {
				v = m.Real[stepVar(d.Name, t)]
			}
			if d.Type == lustre.TInt {
				v = math.Round(v)
				if b, ok := bounds[d.Name]; ok {
					v = math.Min(math.Max(v, math.Ceil(b[0])), math.Floor(b[1]))
				}
			} else if b, ok := bounds[d.Name]; ok {
				v = math.Min(math.Max(v, b[0]), b[1])
			}
			in[d.Name] = v
		}
		tr.Inputs = append(tr.Inputs, in)
	}
	return tr
}

// exactProgram reports whether every flow is bool- or int-typed and no
// division or transcendental call appears — replay is then exact and a
// mismatch is an encoder bug rather than float tolerance.
func exactProgram(p *lustre.Program) bool {
	n := p.Main()
	for _, ds := range [][]lustre.VarDecl{n.Inputs, n.Outputs, n.Locals} {
		for _, d := range ds {
			if d.Type == lustre.TReal {
				return false
			}
		}
	}
	exact := true
	var walk func(e lustre.Expr)
	walk = func(e lustre.Expr) {
		switch x := e.(type) {
		case lustre.Unary:
			walk(x.X)
		case lustre.Binary:
			if x.Op == "/" {
				exact = false
			}
			walk(x.L)
			walk(x.R)
		case lustre.Ite:
			walk(x.Cond)
			walk(x.Then)
			walk(x.Else)
		case lustre.Call:
			exact = false
		}
	}
	for _, eq := range n.Equations {
		walk(eq.Rhs)
	}
	return exact
}

// certify replays the trace through the Lustre evaluator and checks that
// the property holds strictly before the reported step and fails at it.
// For exact (bool/int) programs a mismatch is returned as an error; for
// real-valued programs it clears the certification flag only.
func certify(prog *lustre.Program, tr *Trace, strict bool) (bool, error) {
	ok, err := Replay(prog, tr)
	if err != nil || !ok {
		if strict {
			if err == nil {
				err = fmt.Errorf("mc: internal: counterexample trace does not replay to a violation at instant %d", tr.Step)
			}
			return false, err
		}
		return false, nil
	}
	return true, nil
}

// Replay runs the trace through the step-semantics evaluator and reports
// whether the property holds at instants 0..Step-1 and fails at Step.
func Replay(prog *lustre.Program, tr *Trace) (bool, error) {
	vals, err := lustre.Run(prog, tr.Inputs)
	if err != nil {
		return false, err
	}
	if len(vals) != tr.Step+1 {
		return false, fmt.Errorf("mc: trace has %d instants, step is %d", len(vals), tr.Step)
	}
	for t := 0; t < tr.Step; t++ {
		if vals[t][tr.Property] == 0 {
			return false, nil
		}
	}
	return vals[tr.Step][tr.Property] == 0, nil
}

func addStats(a, b core.Stats) core.Stats {
	a.Iterations += b.Iterations
	a.LinearChecks += b.LinearChecks
	a.NonlinearChecks += b.NonlinearChecks
	a.ConflictClauses += b.ConflictClauses
	a.LossyBlocks += b.LossyBlocks
	a.NESplits += b.NESplits
	a.LemmasPublished += b.LemmasPublished
	a.LemmasImported += b.LemmasImported
	a.LemmasDeduped += b.LemmasDeduped
	a.TheoryCacheHits += b.TheoryCacheHits
	a.TheoryCacheMisses += b.TheoryCacheMisses
	a.SessionSolves += b.SessionSolves
	a.ClausesSubsumed += b.ClausesSubsumed
	a.ProbedLiterals += b.ProbedLiterals
	a.ArenaCompactions += b.ArenaCompactions
	a.BoolTime += b.BoolTime
	a.LinearTime += b.LinearTime
	a.NonlinearTime += b.NonlinearTime
	a.WallTime += b.WallTime
	return a
}
