package mc

import (
	"context"
	"strings"
	"testing"

	"absolver/internal/expr"
	"absolver/internal/lustre"
	"absolver/internal/simulink"
)

func parse(t *testing.T, src string) *lustre.Program {
	t.Helper()
	p, err := lustre.Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return p
}

const counterSrc = `node counter(inc: bool) returns (ok: bool);
var n: int;
let
  n = 0 -> (if inc then pre n + 1 else pre n);
  ok = n <= 3;
tel;
`

func TestCheckFalsifiesCounter(t *testing.T) {
	// n counts the inc pulses; n ≤ 3 first fails at instant 4 (n = 4).
	res, err := Check(context.Background(), parse(t, counterSrc), Options{MaxDepth: 10})
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	if res.Verdict != Falsified || res.K != 4 {
		t.Fatalf("verdict %s at %d, want falsified at 4", res.Verdict, res.K)
	}
	if res.Trace == nil || !res.Certified {
		t.Fatalf("falsification without certified trace: %+v", res)
	}
	// The arrow pins n = 0 at instant 0 whatever inc is, so a depth-4
	// violation needs a pulse at every later instant; instant 0 is free.
	for i, in := range res.Trace.Inputs[1:] {
		if in["inc"] != 1 {
			t.Errorf("instant %d: inc = %g, want 1 (minimal counterexample pulses every later step)", i+1, in["inc"])
		}
	}
}

func TestCheckBoundReached(t *testing.T) {
	res, err := Check(context.Background(), parse(t, counterSrc), Options{MaxDepth: 3})
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	if res.Verdict != BoundReached || res.K != 3 {
		t.Fatalf("verdict %s at %d, want bound_reached at 3", res.Verdict, res.K)
	}
}

func TestCheckProvesSaturatingCounter(t *testing.T) {
	// The counter saturates at 3, so n ≤ 3 is invariant — and inductive at
	// depth 1 (the step relation can't leave [0,3]... from a state where
	// n ≤ 3 held at the previous window instants).
	src := `node sat3(inc: bool) returns (ok: bool);
var n: int;
let
  n = 0 -> (if inc and pre n < 3 then pre n + 1 else pre n);
  ok = n <= 3;
tel;
`
	res, err := Check(context.Background(), parse(t, src), Options{MaxDepth: 10})
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	if res.Verdict != Proved {
		t.Fatalf("verdict %s (reason %q), want proved", res.Verdict, res.Reason)
	}
	if !res.Induction {
		t.Error("Proved verdict without induction flag")
	}

	// Without induction the same program can only exhaust the bound.
	res, err = Check(context.Background(), parse(t, src), Options{MaxDepth: 6, NoInduction: true})
	if err != nil {
		t.Fatalf("Check (no induction): %v", err)
	}
	if res.Verdict != BoundReached {
		t.Fatalf("verdict %s without induction, want bound_reached", res.Verdict)
	}
}

func TestCheckColdMatchesWarm(t *testing.T) {
	for _, src := range []string{counterSrc,
		`node s(a: bool) returns (ok: bool);
var b: bool;
let b = false -> not pre b; ok = not (b and a); tel;`} {
		p := parse(t, src)
		warm, err := Check(context.Background(), p, Options{MaxDepth: 5})
		if err != nil {
			t.Fatalf("warm: %v", err)
		}
		cold, err := Check(context.Background(), p, Options{MaxDepth: 5, Cold: true})
		if err != nil {
			t.Fatalf("cold: %v", err)
		}
		if warm.Verdict != cold.Verdict || warm.K != cold.K {
			t.Fatalf("warm %s@%d vs cold %s@%d", warm.Verdict, warm.K, cold.Verdict, cold.K)
		}
	}
}

func TestCheckCombinationalFromSimulink(t *testing.T) {
	// in ≥ 4 is violated by in = 0 at instant 0; the trace must replay
	// through simulink.Simulate to the same violation.
	m := simulink.NewModel("thresh")
	m.Add(&simulink.Block{Name: "in", Type: simulink.Inport})
	m.Add(&simulink.Block{Name: "lim", Type: simulink.Constant, Value: 4})
	m.Add(&simulink.Block{Name: "cmp", Type: simulink.RelOp, Op: expr.CmpGE})
	m.Add(&simulink.Block{Name: "ok", Type: simulink.Outport})
	m.Connect("in", "cmp", 1)
	m.Connect("lim", "cmp", 2)
	m.Connect("cmp", "ok", 1)

	prog, err := lustre.FromSimulink(m)
	if err != nil {
		t.Fatalf("FromSimulink: %v", err)
	}
	// Guard against RelOp enum drift: the equation must be a comparison.
	eq := lustre.FormatExpr(prog.Main().Equations[0].Rhs)
	if !strings.ContainsAny(eq, "<>=") {
		t.Fatalf("unexpected relop equation %q", eq)
	}

	res, err := Check(context.Background(), prog, Options{MaxDepth: 2})
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	if res.Verdict != Falsified || res.K != 0 {
		t.Fatalf("verdict %s at %d, want falsified at 0", res.Verdict, res.K)
	}
	sim, err := m.Simulate(res.Trace.Inputs[0])
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if sim.Bool["cmp"] {
		t.Fatalf("replayed trace does not violate the property: %+v", sim)
	}
}

func TestCheckPropertyResolution(t *testing.T) {
	src := `node two(a: bool) returns (p, q: bool);
let p = a; q = not a; tel;`
	if _, err := Check(context.Background(), parse(t, src), Options{}); err == nil {
		t.Error("ambiguous property accepted")
	}
	if _, err := Check(context.Background(), parse(t, src), Options{Property: "missing"}); err == nil {
		t.Error("undeclared property accepted")
	}
	src = `node num(a: int) returns (o: int);
let o = a; tel;`
	if _, err := Check(context.Background(), parse(t, src), Options{Property: "o"}); err == nil {
		t.Error("numeric property accepted")
	}
	res, err := Check(context.Background(), parse(t, `node two(a: bool) returns (p, q: bool);
let p = a; q = not a; tel;`), Options{Property: "q", MaxDepth: 1})
	if err != nil {
		t.Fatalf("named property: %v", err)
	}
	if res.Verdict != Falsified {
		t.Fatalf("q = not a should be falsified by a = true, got %s", res.Verdict)
	}
}

func TestCheckInputBounds(t *testing.T) {
	// With x confined to [0, 5], x ≤ 9 is provable (it is not inductive
	// over the unbounded reals but the bounds are background theory).
	src := `node b(x: int) returns (ok: bool);
let ok = x <= 9; tel;`
	res, err := Check(context.Background(), parse(t, src), Options{
		MaxDepth:    3,
		InputBounds: map[string][2]float64{"x": {0, 5}},
	})
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	if res.Verdict != Proved {
		t.Fatalf("verdict %s, want proved under input bounds", res.Verdict)
	}

	// Unbounded, the same property is falsified with an in-range witness.
	res, err = Check(context.Background(), parse(t, src), Options{MaxDepth: 3})
	if err != nil {
		t.Fatalf("Check unbounded: %v", err)
	}
	if res.Verdict != Falsified || !res.Certified {
		t.Fatalf("unbounded verdict %s (certified %v), want certified falsification", res.Verdict, res.Certified)
	}
}
