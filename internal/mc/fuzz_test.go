package mc_test

import (
	"context"
	"testing"

	"absolver/internal/testkit"
)

// FuzzCheckShallow lets the fuzzer drive the model-checking differential
// at shallow depth: any seed whose generated program makes mc.Check
// disagree with the explicit-state oracle — wrong verdict, wrong
// falsification depth, a trace that does not replay — is a crasher. The
// interesting search space is the generator's seed space, so
// coverage-guided mutation of the seed explores program shapes directly.
func FuzzCheckShallow(f *testing.F) {
	for seed := int64(0); seed < 8; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		if _, err := testkit.RunMCDifferential(context.Background(), seed, 3); err != nil {
			t.Fatal(err)
		}
	})
}
