package interval

import (
	"math"
	"testing"
)

// TestDivEdgeCases pins the behaviour of Div around zero-containing
// denominators. The contract (see the Div doc comment) is that the result is
// a sound hull of the true quotient set: division by the point zero is the
// empty relation, an interior zero yields the whole line, and a zero
// endpoint yields the appropriate ray.
func TestDivEdgeCases(t *testing.T) {
	inf := math.Inf(1)
	cases := []struct {
		name string
		a, b Interval
		// Sample true quotients that must be contained in the result, and
		// points that must NOT be (to catch the hull collapsing to Whole
		// when a tighter ray is available).
		in      []float64
		out     []float64
		empty   bool
		whole   bool
		unbndLo bool // result must reach -Inf
		unbndHi bool // result must reach +Inf
	}{
		{
			name:  "point zero denominator",
			a:     New(1, 2),
			b:     Point(0),
			empty: true,
		},
		{
			name:  "interior zero denominator",
			a:     New(1, 2),
			b:     New(-1, 1),
			whole: true,
		},
		{
			name:    "zero lower endpoint, positive numerator",
			a:       New(1, 2),
			b:       New(0, 4),
			in:      []float64{0.25, 1, 1e6},
			out:     []float64{0, -1},
			unbndHi: true,
		},
		{
			name:    "zero lower endpoint, negative numerator",
			a:       New(-2, -1),
			b:       New(0, 4),
			in:      []float64{-0.25, -1, -1e6},
			out:     []float64{0, 1},
			unbndLo: true,
		},
		{
			name:  "zero lower endpoint, sign-spanning numerator",
			a:     New(-1, 2),
			b:     New(0, 4),
			whole: true,
		},
		{
			name:    "zero upper endpoint, positive numerator",
			a:       New(1, 2),
			b:       New(-4, 0),
			in:      []float64{-0.25, -1, -1e6},
			out:     []float64{0, 1},
			unbndLo: true,
		},
		{
			name:    "zero upper endpoint, negative numerator",
			a:       New(-2, -1),
			b:       New(-4, 0),
			in:      []float64{0.25, 1, 1e6},
			out:     []float64{0, -1},
			unbndHi: true,
		},
		{
			name: "zero numerator over zero-endpoint denominator",
			a:    Point(0),
			b:    New(0, 4),
			in:   []float64{0},
			out:  []float64{1, -1},
		},
		{
			name: "sign-definite denominator stays finite",
			a:    New(1, 2),
			b:    New(2, 4),
			in:   []float64{0.25, 0.5, 1},
			out:  []float64{0.2, 1.5},
		},
		{
			name:  "unbounded denominator spanning zero",
			a:     New(1, 1),
			b:     Whole(),
			whole: true,
		},
		{
			name: "positive ray denominator",
			a:    New(2, 4),
			b:    New(1, inf),
			in:   []float64{0, 1, 4},
			out:  []float64{-1, 5},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := c.a.Div(c.b)
			if c.empty != got.IsEmpty() {
				t.Fatalf("%v / %v = %v, empty=%v want %v", c.a, c.b, got, got.IsEmpty(), c.empty)
			}
			if c.empty {
				return
			}
			if c.whole && !got.IsWhole() {
				t.Fatalf("%v / %v = %v, want whole line", c.a, c.b, got)
			}
			if c.unbndLo && !math.IsInf(got.Lo, -1) {
				t.Fatalf("%v / %v = %v, want lower bound -Inf", c.a, c.b, got)
			}
			if c.unbndHi && !math.IsInf(got.Hi, 1) {
				t.Fatalf("%v / %v = %v, want upper bound +Inf", c.a, c.b, got)
			}
			for _, x := range c.in {
				if !approxIn(x, got) {
					t.Errorf("%v / %v = %v should contain %g", c.a, c.b, got, x)
				}
			}
			for _, x := range c.out {
				if approxIn(x, got) {
					t.Errorf("%v / %v = %v should exclude %g", c.a, c.b, got, x)
				}
			}
		})
	}
}

// TestDivInclusionProperty cross-checks Div against pointwise quotients: for
// every sampled a in the numerator and b≠0 in the denominator, a/b must lie
// in the interval quotient. This is the soundness property HC4 and polyar
// rely on.
func TestDivInclusionProperty(t *testing.T) {
	nums := []Interval{New(-3, -1), New(-1, 2), Point(0), New(0.5, 4)}
	dens := []Interval{New(-2, -0.5), New(-1, 1), New(-3, 0), New(0, 3), New(0.25, 2)}
	for _, a := range nums {
		for _, b := range dens {
			q := a.Div(b)
			for ai := 0; ai <= 8; ai++ {
				for bi := 0; bi <= 8; bi++ {
					x := a.Lo + (a.Hi-a.Lo)*float64(ai)/8
					y := b.Lo + (b.Hi-b.Lo)*float64(bi)/8
					if y == 0 {
						continue
					}
					if !approxIn(x/y, q) {
						t.Fatalf("%v / %v = %v misses %g/%g = %g", a, b, q, x, y, x/y)
					}
				}
			}
		}
	}
}

// TestPowEdgeCases pins the behaviour of Pow on sign-spanning bases and
// negative exponents.
func TestPowEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		v    Interval
		n    int
		in   []float64
		out  []float64
	}{
		{
			// Even power of a sign-spanning base must include 0 (the base
			// passes through zero) and reach both endpoint powers.
			name: "even power of sign-spanning base",
			v:    New(-2, 3),
			n:    2,
			in:   []float64{0, 4, 9},
			out:  []float64{-1, 10},
		},
		{
			name: "fourth power of sign-spanning base",
			v:    New(-2, 3),
			n:    4,
			in:   []float64{0, 16, 81},
			out:  []float64{-1, 100},
		},
		{
			name: "even power of negative base is positive",
			v:    New(-3, -1),
			n:    2,
			in:   []float64{1, 9},
			out:  []float64{0, -1, 10},
		},
		{
			// 1/x² over a sign-spanning base: the true set is [min, ∞); the
			// result must at least cover it and must not dip below zero far
			// enough to include large negatives spuriously... it may be the
			// whole line as a hull, so only inclusion is pinned.
			name: "negative even power of sign-spanning base",
			v:    New(-2, 3),
			n:    -2,
			in:   []float64{1.0 / 9, 1, 1e9},
		},
		{
			name: "negative even power of positive base",
			v:    New(2, 4),
			n:    -2,
			in:   []float64{1.0 / 16, 1.0 / 4},
			out:  []float64{0, 1},
		},
		{
			name: "zeroth power",
			v:    New(-5, 7),
			n:    0,
			in:   []float64{1},
			out:  []float64{0, 2},
		},
		{
			name: "odd power of sign-spanning base",
			v:    New(-2, 3),
			n:    3,
			in:   []float64{-8, 0, 27},
		},
		{
			name: "odd negative power of positive base",
			v:    New(1, 2),
			n:    -3,
			in:   []float64{1.0 / 8, 1},
			out:  []float64{0, 2},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := c.v.Pow(c.n)
			for _, x := range c.in {
				if !approxIn(x, got) {
					t.Errorf("%v ^ %d = %v should contain %g", c.v, c.n, got, x)
				}
			}
			for _, x := range c.out {
				if approxIn(x, got) {
					t.Errorf("%v ^ %d = %v should exclude %g", c.v, c.n, got, x)
				}
			}
		})
	}
}

// TestPowInclusionProperty cross-checks Pow against pointwise powers.
func TestPowInclusionProperty(t *testing.T) {
	bases := []Interval{New(-3, -1), New(-2, 3), New(0, 2), New(0.5, 4)}
	for _, v := range bases {
		for n := -3; n <= 5; n++ {
			p := v.Pow(n)
			for i := 0; i <= 16; i++ {
				x := v.Lo + (v.Hi-v.Lo)*float64(i)/16
				if x == 0 && n < 0 {
					continue
				}
				want := math.Pow(x, float64(n))
				if !approxIn(want, p) {
					t.Fatalf("%v ^ %d = %v misses %g^%d = %g", v, n, p, x, n, want)
				}
			}
		}
	}
}
