package interval

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approxIn(x float64, v Interval) bool {
	const slack = 1e-9
	return x >= v.Lo-slack-1e-9*math.Abs(v.Lo) && x <= v.Hi+slack+1e-9*math.Abs(v.Hi)
}

func TestBasics(t *testing.T) {
	v := New(1, 3)
	if v.IsEmpty() || !v.Contains(2) || v.Contains(4) {
		t.Fatal("basic containment broken")
	}
	if Empty().Contains(0) {
		t.Fatal("empty contains 0")
	}
	if !Whole().Contains(1e300) {
		t.Fatal("whole missing 1e300")
	}
	if Point(5).Width() != 0 {
		t.Fatal("point width")
	}
	if New(1, 3).Width() != 2 {
		t.Fatal("width")
	}
}

func TestMid(t *testing.T) {
	cases := []struct {
		v Interval
	}{
		{New(0, 10)}, {New(-5, 5)}, {Whole()},
		{New(math.Inf(-1), 3)}, {New(3, math.Inf(1))},
		{New(math.Inf(-1), -10)}, {New(10, math.Inf(1))},
	}
	for _, c := range cases {
		m := c.v.Mid()
		if math.IsInf(m, 0) || math.IsNaN(m) {
			t.Fatalf("Mid(%v) = %v not finite", c.v, m)
		}
		if !c.v.Contains(m) {
			t.Fatalf("Mid(%v) = %v outside", c.v, m)
		}
	}
}

func TestClamp(t *testing.T) {
	v := New(2, 5)
	if v.Clamp(1) != 2 || v.Clamp(7) != 5 || v.Clamp(3) != 3 {
		t.Fatal("clamp")
	}
}

func TestIntersectHull(t *testing.T) {
	a, b := New(0, 5), New(3, 8)
	if got := a.Intersect(b); got.Lo != 3 || got.Hi != 5 {
		t.Fatalf("intersect = %v", got)
	}
	if got := a.Hull(b); got.Lo != 0 || got.Hi != 8 {
		t.Fatalf("hull = %v", got)
	}
	if !New(0, 1).Intersect(New(2, 3)).IsEmpty() {
		t.Fatal("disjoint intersect not empty")
	}
	if got := Empty().Hull(a); got != a {
		t.Fatalf("hull with empty = %v", got)
	}
	if !Empty().Intersect(a).IsEmpty() {
		t.Fatal("intersect with empty")
	}
}

// TestArithmeticInclusion is the fundamental soundness property: for points
// x ∈ X, y ∈ Y the result of the real operation lies in the interval result.
func TestArithmeticInclusion(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	randIv := func() Interval {
		a := rng.Float64()*20 - 10
		b := a + rng.Float64()*10
		return New(a, b)
	}
	sample := func(v Interval) float64 {
		return v.Lo + rng.Float64()*(v.Hi-v.Lo)
	}
	for iter := 0; iter < 2000; iter++ {
		X, Y := randIv(), randIv()
		x, y := sample(X), sample(Y)
		if !approxIn(x+y, X.Add(Y)) {
			t.Fatalf("add: %g+%g ∉ %v", x, y, X.Add(Y))
		}
		if !approxIn(x-y, X.Sub(Y)) {
			t.Fatalf("sub: %g-%g ∉ %v", x, y, X.Sub(Y))
		}
		if !approxIn(x*y, X.Mul(Y)) {
			t.Fatalf("mul: %g*%g ∉ %v", x, y, X.Mul(Y))
		}
		if y != 0 && !Y.ContainsZero() {
			if !approxIn(x/y, X.Div(Y)) {
				t.Fatalf("div: %g/%g ∉ %v (X=%v Y=%v)", x, y, X.Div(Y), X, Y)
			}
		}
		if !approxIn(x*x, X.Sqr()) {
			t.Fatalf("sqr: %g² ∉ %v", x, X.Sqr())
		}
		if !approxIn(-x, X.Neg()) {
			t.Fatalf("neg")
		}
		if !approxIn(math.Abs(x), X.Abs()) {
			t.Fatalf("abs")
		}
		if !approxIn(math.Sin(x), X.Sin()) {
			t.Fatalf("sin(%g) = %g ∉ %v (X=%v)", x, math.Sin(x), X.Sin(), X)
		}
		if !approxIn(math.Cos(x), X.Cos()) {
			t.Fatalf("cos(%g) ∉ %v (X=%v)", x, X.Cos(), X)
		}
		if x > 0 {
			P := X.Intersect(New(1e-12, math.Inf(1)))
			if P.Contains(x) {
				if !approxIn(math.Log(x), P.Log()) {
					t.Fatalf("log")
				}
				if !approxIn(math.Sqrt(x), P.Sqrt()) {
					t.Fatalf("sqrt")
				}
			}
		}
		Z := X.Intersect(New(-5, 5))
		if !Z.IsEmpty() {
			z := Z.Clamp(x)
			if !approxIn(math.Exp(z), Z.Exp()) {
				t.Fatalf("exp")
			}
		}
	}
}

func TestMulSigns(t *testing.T) {
	cases := []struct {
		a, b, want Interval
	}{
		{New(1, 2), New(3, 4), New(3, 8)},
		{New(-2, -1), New(3, 4), New(-8, -3)},
		{New(-2, 3), New(-1, 4), New(-8, 12)},
		{New(0, 0), Whole(), New(0, 0)},
	}
	for _, c := range cases {
		got := c.a.Mul(c.b)
		if math.Abs(got.Lo-c.want.Lo) > 1e-9 || math.Abs(got.Hi-c.want.Hi) > 1e-9 {
			t.Fatalf("%v * %v = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestDivByZeroSpan(t *testing.T) {
	if got := New(1, 2).Div(New(-1, 1)); !got.IsWhole() {
		t.Fatalf("1..2 / -1..1 = %v, want whole", got)
	}
	if got := New(1, 2).Div(Point(0)); !got.IsEmpty() {
		t.Fatalf("x/0 = %v, want empty", got)
	}
}

func TestSqrTighterThanMul(t *testing.T) {
	v := New(-2, 3)
	sq := v.Sqr()
	if sq.Lo < -1e-9 {
		t.Fatalf("square has negative lower bound: %v", sq)
	}
	if sq.Hi < 9-1e-6 {
		t.Fatalf("square upper bound too small: %v", sq)
	}
}

func TestSinRange(t *testing.T) {
	// Full period → [-1,1].
	if got := New(0, 10).Sin(); got.Lo > -1+1e-9 || got.Hi < 1-1e-9 {
		t.Fatalf("sin over full period = %v", got)
	}
	// Small interval around 0: sin monotone.
	got := New(-0.1, 0.1).Sin()
	if !approxIn(math.Sin(-0.1), got) || !approxIn(math.Sin(0.1), got) || got.Hi > 0.2 {
		t.Fatalf("sin(-0.1..0.1) = %v", got)
	}
	// Interval containing π/2 must reach 1.
	got = New(1, 2).Sin()
	if got.Hi < 1-1e-9 {
		t.Fatalf("sin(1..2) = %v should reach 1", got)
	}
}

func TestPow(t *testing.T) {
	v := New(2, 3)
	if got := v.Pow(0); got != Point(1) {
		t.Fatalf("x^0 = %v", got)
	}
	got := v.Pow(3)
	if !approxIn(8, got) || !approxIn(27, got) {
		t.Fatalf("2..3 ^3 = %v", got)
	}
	got = New(-2, 2).Pow(2)
	if got.Lo < -1e-9 || !approxIn(4, got) {
		t.Fatalf("(-2..2)^2 = %v", got)
	}
	got = New(2, 4).Pow(-1)
	if !approxIn(0.25, got) || !approxIn(0.5, got) {
		t.Fatalf("(2..4)^-1 = %v", got)
	}
}

func TestEmptyPropagation(t *testing.T) {
	e := Empty()
	for _, got := range []Interval{
		e.Add(New(1, 2)), e.Sub(New(1, 2)), e.Mul(New(1, 2)),
		e.Div(New(1, 2)), e.Neg(), e.Sqr(), e.Exp(),
	} {
		if !got.IsEmpty() {
			t.Fatalf("operation on empty produced %v", got)
		}
	}
}

// Property: Hull is commutative and contains both arguments.
func TestQuickHull(t *testing.T) {
	f := func(a, b, c, d float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsNaN(c) || math.IsNaN(d) {
			return true
		}
		v := New(math.Min(a, b), math.Max(a, b))
		w := New(math.Min(c, d), math.Max(c, d))
		h1, h2 := v.Hull(w), w.Hull(v)
		return h1 == h2 && h1.Lo <= v.Lo && h1.Hi >= v.Hi && h1.Lo <= w.Lo && h1.Hi >= w.Hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Add is commutative.
func TestQuickAddComm(t *testing.T) {
	f := func(a, b, c, d float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsNaN(c) || math.IsNaN(d) {
			return true
		}
		v := New(math.Min(a, b), math.Max(a, b))
		w := New(math.Min(c, d), math.Max(c, d))
		return v.Add(w) == w.Add(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStringForms(t *testing.T) {
	if Empty().String() != "∅" {
		t.Fatal("empty string form")
	}
	if New(1, 2).String() != "[1, 2]" {
		t.Fatalf("got %q", New(1, 2).String())
	}
}
