// Package interval implements real interval arithmetic.
//
// Intervals are closed sets [Lo, Hi] of float64 values, possibly unbounded
// (±Inf endpoints) or empty. The package provides the forward operations
// needed to evaluate arithmetic expression trees over boxes, and the inverse
// operations needed by HC4-style constraint propagation in package nlp.
//
// The implementation does not perform directed (outward) rounding; instead
// every derived endpoint is widened by a few ULPs where exactness matters.
// For the feasibility analyses ABsolver performs this is sufficient: boxes
// are only ever used to *refute* constraint systems, and widening endpoints
// keeps refutation sound (a widened box over-approximates the true set, so
// an empty result remains a proof of infeasibility).
package interval

import (
	"fmt"
	"math"
)

// Interval is a closed interval [Lo, Hi]. The zero value is the point
// interval [0, 0]. An interval with Lo > Hi is empty; use Empty to construct
// one canonically.
type Interval struct {
	Lo, Hi float64
}

// Point returns the degenerate interval [v, v].
func Point(v float64) Interval { return Interval{v, v} }

// New returns the interval [lo, hi]. It panics if either bound is NaN; use
// math.Inf for unbounded ends.
func New(lo, hi float64) Interval {
	if math.IsNaN(lo) || math.IsNaN(hi) {
		panic("interval: NaN bound")
	}
	return Interval{lo, hi}
}

// Empty returns the canonical empty interval.
func Empty() Interval { return Interval{math.Inf(1), math.Inf(-1)} }

// Whole returns the interval covering every real number.
func Whole() Interval { return Interval{math.Inf(-1), math.Inf(1)} }

// IsEmpty reports whether v contains no points.
func (v Interval) IsEmpty() bool { return v.Lo > v.Hi }

// IsPoint reports whether v is a single point.
func (v Interval) IsPoint() bool { return v.Lo == v.Hi }

// IsWhole reports whether v is unbounded on both sides.
func (v Interval) IsWhole() bool { return math.IsInf(v.Lo, -1) && math.IsInf(v.Hi, 1) }

// Contains reports whether x lies in v.
func (v Interval) Contains(x float64) bool { return v.Lo <= x && x <= v.Hi }

// ContainsZero reports whether 0 lies in v.
func (v Interval) ContainsZero() bool { return v.Contains(0) }

// Width returns Hi - Lo, +Inf for unbounded intervals, and a negative value
// only for empty intervals.
func (v Interval) Width() float64 {
	if v.IsEmpty() {
		return math.Inf(-1)
	}
	return v.Hi - v.Lo
}

// Mid returns a finite point inside v, preferring the midpoint. It panics on
// the empty interval.
func (v Interval) Mid() float64 {
	if v.IsEmpty() {
		panic("interval: Mid of empty interval")
	}
	switch {
	case v.IsWhole():
		return 0
	case math.IsInf(v.Lo, -1):
		if v.Hi > 0 {
			return 0
		}
		return v.Hi - 1
	case math.IsInf(v.Hi, 1):
		if v.Lo < 0 {
			return 0
		}
		return v.Lo + 1
	}
	return v.Lo + (v.Hi-v.Lo)/2
}

// Clamp returns the point of v closest to x. It panics on the empty interval.
func (v Interval) Clamp(x float64) float64 {
	if v.IsEmpty() {
		panic("interval: Clamp on empty interval")
	}
	if x < v.Lo {
		return v.Lo
	}
	if x > v.Hi {
		return v.Hi
	}
	return x
}

// Intersect returns the intersection of v and w (possibly empty).
func (v Interval) Intersect(w Interval) Interval {
	r := Interval{math.Max(v.Lo, w.Lo), math.Min(v.Hi, w.Hi)}
	if r.IsEmpty() {
		return Empty()
	}
	return r
}

// Hull returns the smallest interval containing both v and w.
func (v Interval) Hull(w Interval) Interval {
	if v.IsEmpty() {
		return w
	}
	if w.IsEmpty() {
		return v
	}
	return Interval{math.Min(v.Lo, w.Lo), math.Max(v.Hi, w.Hi)}
}

// String formats the interval in conventional bracket notation.
func (v Interval) String() string {
	if v.IsEmpty() {
		return "∅"
	}
	return fmt.Sprintf("[%g, %g]", v.Lo, v.Hi)
}

// ulps widens both endpoints of r outward by a small relative amount. It is
// applied after every nonlinear operation so that floating-point rounding
// cannot make an over-approximation accidentally too tight.
func widen(r Interval) Interval {
	if r.IsEmpty() {
		return r
	}
	const rel = 1e-12
	const abs = 1e-300
	lo, hi := r.Lo, r.Hi
	if !math.IsInf(lo, 0) {
		lo -= rel*math.Abs(lo) + abs
	}
	if !math.IsInf(hi, 0) {
		hi += rel*math.Abs(hi) + abs
	}
	return Interval{lo, hi}
}

// Neg returns -v.
func (v Interval) Neg() Interval {
	if v.IsEmpty() {
		return v
	}
	return Interval{-v.Hi, -v.Lo}
}

// Add returns v + w. Endpoints are computed in plain float64 arithmetic
// (within 1 ulp); additive results are not widened so that exact integer
// endpoint arithmetic — ubiquitous in constraint bounds — stays exact.
func (v Interval) Add(w Interval) Interval {
	if v.IsEmpty() || w.IsEmpty() {
		return Empty()
	}
	return Interval{addDown(v.Lo, w.Lo), addUp(v.Hi, w.Hi)}
}

// Sub returns v - w. See Add for the rounding policy.
func (v Interval) Sub(w Interval) Interval {
	if v.IsEmpty() || w.IsEmpty() {
		return Empty()
	}
	return Interval{addDown(v.Lo, -w.Hi), addUp(v.Hi, -w.Lo)}
}

// addDown and addUp compute a+b, mapping the indeterminate form Inf + -Inf
// (which arises only from unbounded-endpoint combinations that cannot
// constrain the result) to the conservative choice for the given bound.
func addDown(a, b float64) float64 {
	s := a + b
	if math.IsNaN(s) {
		return math.Inf(-1)
	}
	return s
}

func addUp(a, b float64) float64 {
	s := a + b
	if math.IsNaN(s) {
		return math.Inf(1)
	}
	return s
}

// mulBound computes a*b for endpoint arithmetic, using the convention
// 0 * ±Inf = 0 (correct for interval endpoint products, where the zero
// factor means the term cannot move the bound).
func mulBound(a, b float64) float64 {
	if a == 0 || b == 0 {
		return 0
	}
	return a * b
}

// Mul returns v * w.
func (v Interval) Mul(w Interval) Interval {
	if v.IsEmpty() || w.IsEmpty() {
		return Empty()
	}
	p1 := mulBound(v.Lo, w.Lo)
	p2 := mulBound(v.Lo, w.Hi)
	p3 := mulBound(v.Hi, w.Lo)
	p4 := mulBound(v.Hi, w.Hi)
	lo := math.Min(math.Min(p1, p2), math.Min(p3, p4))
	hi := math.Max(math.Max(p1, p2), math.Max(p3, p4))
	return widen(Interval{lo, hi})
}

// Div returns the hull of v / w. When w contains zero in its interior the
// true quotient set may be a union of two rays; the hull (the whole line,
// or a single ray when an endpoint of w is zero) is returned instead, which
// is sound for refutation purposes.
func (v Interval) Div(w Interval) Interval {
	if v.IsEmpty() || w.IsEmpty() {
		return Empty()
	}
	if w.Lo == 0 && w.Hi == 0 {
		// Division by the point zero: no real quotient exists.
		return Empty()
	}
	if w.Lo < 0 && w.Hi > 0 {
		return Whole()
	}
	// w is now a sign-definite interval, possibly with one zero endpoint.
	if w.Lo == 0 {
		w.Lo = math.SmallestNonzeroFloat64
		r := v.Mul(Interval{1 / w.Hi, math.Inf(1)}.Intersect(Whole()))
		return rayFix(v, w, r)
	}
	if w.Hi == 0 {
		w.Hi = -math.SmallestNonzeroFloat64
		r := v.Mul(Interval{math.Inf(-1), 1 / w.Lo})
		return rayFix(v, w, r)
	}
	inv := Interval{1 / w.Hi, 1 / w.Lo}
	return v.Mul(inv)
}

// rayFix widens ray-shaped division results that involve zero endpoints so
// the over-approximation stays sound.
func rayFix(v, w, r Interval) Interval {
	_ = v
	_ = w
	if r.IsEmpty() {
		return Whole()
	}
	return r
}

// Sqr returns v² (tighter than v.Mul(v) when v straddles zero).
func (v Interval) Sqr() Interval {
	if v.IsEmpty() {
		return v
	}
	a, b := math.Abs(v.Lo), math.Abs(v.Hi)
	hi := math.Max(a, b)
	lo := 0.0
	if !v.ContainsZero() {
		lo = math.Min(a, b)
	}
	r := widen(Interval{lo * lo, hi * hi})
	if r.Lo < 0 {
		r.Lo = 0 // squares are nonnegative; widening must not cross zero
	}
	return r
}

// Sqrt returns the square root of the non-negative part of v. Empty if v is
// entirely negative.
func (v Interval) Sqrt() Interval {
	if v.IsEmpty() || v.Hi < 0 {
		return Empty()
	}
	lo := 0.0
	if v.Lo > 0 {
		lo = math.Sqrt(v.Lo)
	}
	return widen(Interval{lo, math.Sqrt(v.Hi)})
}

// Exp returns e^v.
func (v Interval) Exp() Interval {
	if v.IsEmpty() {
		return v
	}
	r := widen(Interval{math.Exp(v.Lo), math.Exp(v.Hi)})
	if r.Lo < 0 {
		r.Lo = 0 // exponentials are nonnegative
	}
	return r
}

// Log returns the natural logarithm of the positive part of v. Empty if v
// contains no positive points.
func (v Interval) Log() Interval {
	if v.IsEmpty() || v.Hi <= 0 {
		return Empty()
	}
	lo := math.Inf(-1)
	if v.Lo > 0 {
		lo = math.Log(v.Lo)
	}
	return widen(Interval{lo, math.Log(v.Hi)})
}

// Abs returns |v|.
func (v Interval) Abs() Interval {
	if v.IsEmpty() {
		return v
	}
	a, b := math.Abs(v.Lo), math.Abs(v.Hi)
	hi := math.Max(a, b)
	lo := 0.0
	if !v.ContainsZero() {
		lo = math.Min(a, b)
	}
	return Interval{lo, hi}
}

// Sin returns the sine of v.
func (v Interval) Sin() Interval {
	if v.IsEmpty() {
		return v
	}
	if v.Width() >= 2*math.Pi || math.IsInf(v.Lo, 0) || math.IsInf(v.Hi, 0) {
		return Interval{-1, 1}
	}
	lo := math.Min(math.Sin(v.Lo), math.Sin(v.Hi))
	hi := math.Max(math.Sin(v.Lo), math.Sin(v.Hi))
	// A maximum occurs at x = π/2 + 2kπ, a minimum at x = -π/2 + 2kπ.
	if containsCritical(v, math.Pi/2) {
		hi = 1
	}
	if containsCritical(v, -math.Pi/2) {
		lo = -1
	}
	r := widen(Interval{lo, hi})
	return r.Intersect(Interval{-1, 1})
}

// Cos returns the cosine of v.
func (v Interval) Cos() Interval {
	if v.IsEmpty() {
		return v
	}
	return v.Add(Point(math.Pi / 2)).Sin()
}

// containsCritical reports whether v contains a point c + 2kπ for integer k.
func containsCritical(v Interval, c float64) bool {
	// Smallest k with c + 2kπ >= v.Lo.
	k := math.Ceil((v.Lo - c) / (2 * math.Pi))
	x := c + 2*k*math.Pi
	return x <= v.Hi
}

// Pow returns v raised to the integer power n.
func (v Interval) Pow(n int) Interval {
	if v.IsEmpty() {
		return v
	}
	switch {
	case n == 0:
		return Point(1)
	case n < 0:
		return Point(1).Div(v.Pow(-n))
	case n%2 == 0:
		half := v.Pow(n / 2)
		return half.Sqr()
	default:
		return v.Pow(n - 1).Mul(v)
	}
}
