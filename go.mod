module absolver

go 1.22
