// Testgen demonstrates the paper's Sec. 6 use-case: "further possible
// use-cases of ABSOLVER include the automatic generation of test cases.
// Since ABSOLVER, internally, determines the solutions by computing all
// possible assignments, common coverage metrics like path coverage can be
// obtained for free."
//
// The Fig. 1 model is converted to an AB problem and every theory-
// consistent atom-decision profile (= path through the model's condition
// structure) is enumerated, each with concrete sensor inputs driving it —
// a condition-coverage test suite for the model.
package main

import (
	"fmt"
	"log"
	"sort"

	"absolver"
	"absolver/internal/simulink"
)

func main() {
	model := simulink.Fig1()
	problem, err := absolver.ConvertSimulink(model)
	if err != nil {
		log.Fatal(err)
	}
	for _, v := range []string{"a", "x", "i", "j"} {
		problem.SetBounds(v, -10, 10)
	}
	problem.SetBounds("y", -10, 3.9)

	vectors, status, err := absolver.GenerateTestVectors(problem, absolver.Config{}, 0)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Fig. 1 model: %d feasible condition profiles (paths); enumeration ended %v\n\n",
		len(vectors), status)

	// Stable ordering of decision variables for printing.
	var decVars []int
	if len(vectors) > 0 {
		for v := range vectors[0].Decisions {
			decVars = append(decVars, v)
		}
		sort.Ints(decVars)
	}
	inputs := []string{"a", "x", "y", "i", "j"}

	for n, tv := range vectors {
		profile := make([]byte, len(decVars))
		for i, v := range decVars {
			if tv.Decisions[v] {
				profile[i] = '1'
			} else {
				profile[i] = '0'
			}
		}
		// Close the loop: run the classic simulation path on the generated
		// stimulus and confirm the modelled output.
		stim := map[string]float64{}
		for _, in := range inputs {
			stim[in] = tv.Inputs[in]
		}
		sim, err := model.Simulate(stim)
		if err != nil {
			log.Fatalf("simulating test %d: %v", n+1, err)
		}
		fmt.Printf("test %2d: atoms=%s  Out1=%-5v inputs:", n+1, profile, sim.Bool["Out1"])
		for _, in := range inputs {
			fmt.Printf(" %s=%.3g", in, tv.Inputs[in])
		}
		fmt.Println()
		if !sim.Bool["Out1"] {
			log.Fatalf("test %d: simulation contradicts the solver's witness", n+1)
		}
		if n == 14 && len(vectors) > 16 {
			fmt.Printf("… and %d more\n", len(vectors)-15)
			break
		}
	}
	fmt.Println("\nEach line is a concrete sensor stimulus, validated by simulation;")
	fmt.Println("running all of them achieves full condition coverage of the model.")
}
