// Sudoku demonstrates the paper's Sec. 5.3 workload: solving 9×9 puzzles
// as mixed Boolean-integer AB problems — "the Sudoku puzzle can be tackled
// more efficiently as a mixed problem and the encoding is more natural as
// it can make use of integers". The example solves one hard instance with
// the mixed encoding and cross-checks the result against the pure CNF
// translation of refs [6, 12].
package main

import (
	"fmt"
	"log"
	"time"

	"absolver"
	"absolver/internal/sudoku"
)

func main() {
	inst := sudoku.Puzzles()[0] // 2006_05_23_hard
	fmt.Printf("Puzzle %s (%d givens):\n%s\n", inst.Name, inst.Puzzle.Givens(), inst.Puzzle.String())

	// Mixed Boolean-integer encoding: one integer variable per cell,
	// selector atoms b ⇔ (cell = d), Boolean skeleton for structure.
	mixed := sudoku.EncodeMixed(&inst.Puzzle)
	cl, bv, lin, nl := mixed.Counts()
	fmt.Printf("mixed encoding: %d clauses, %d Boolean vars, %d integer atoms (%d nonlinear)\n",
		cl, bv, lin, nl)

	start := time.Now()
	res, err := absolver.Solve(mixed)
	if err != nil {
		log.Fatal(err)
	}
	if res.Status != absolver.StatusSat {
		log.Fatalf("unexpected verdict %v", res.Status)
	}
	tMixed := time.Since(start)
	grid, err := sudoku.DecodeMixed(res.Model)
	if err != nil {
		log.Fatal(err)
	}
	if err := sudoku.Verify(&inst.Puzzle, grid); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("solved in %v (paper: ≈0.28 s on 2006 hardware):\n%s\n",
		tMixed.Round(time.Millisecond), grid.String())

	// Cross-check with the pure CNF encoding.
	cnf := sudoku.EncodeCNF(&inst.Puzzle)
	start = time.Now()
	res2, err := absolver.Solve(cnf)
	if err != nil {
		log.Fatal(err)
	}
	tCNF := time.Since(start)
	grid2, err := sudoku.DecodeCNF(res2.Model.Bool)
	if err != nil {
		log.Fatal(err)
	}
	if err := sudoku.Verify(&inst.Puzzle, grid2); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pure-CNF encoding solved in %v (same puzzle, SAT-only path)\n", tCNF.Round(time.Millisecond))
}
