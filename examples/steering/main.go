// Steering reproduces the paper's industrial case study (Sec. 3): the
// safety analysis of a car's steering control system. The synthetic model
// (see internal/steering) matches the published interface — yaw sensor,
// lateral-acceleration sensor, four wheel-speed sensors, steering angle —
// and problem dimensions (≈976 clauses, 24 constraints: 4 linear, 20
// nonlinear). The analysis asks for a *critical driving situation*: a
// sensor state where the car is demonstrably oversteering within its
// physical limits while the commanded correction leaves the actuator
// range. A witness is a concrete test vector for the controller.
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"absolver"
	"absolver/internal/steering"
)

func main() {
	fmt.Println("Car steering control — safety analysis (paper Sec. 3)")
	fmt.Println("Sensor ranges:")
	bounds := steering.SensorBounds()
	names := make([]string, 0, len(bounds))
	for n := range bounds {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Printf("  %-6s ∈ [%g, %g]\n", n, bounds[n][0], bounds[n][1])
	}

	problem, err := steering.Problem()
	if err != nil {
		log.Fatal(err)
	}
	cl, bv, lin, nl := problem.Counts()
	fmt.Printf("\nConverted problem: %d clauses, %d Boolean variables, %d linear + %d nonlinear constraints\n",
		cl, bv, lin, nl)
	fmt.Println("(paper: 976 clauses, 24 constraints: 4 linear, 20 nonlinear)")

	start := time.Now()
	res, err := absolver.Solve(problem)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nverdict: %v in %v (paper: <1 minute)\n", res.Status, time.Since(start).Round(time.Millisecond))

	if res.Status == absolver.StatusSat {
		m := res.Model.Real
		fmt.Println("\ncritical driving situation (test vector):")
		for _, n := range names {
			fmt.Printf("  %-6s = %8.4f\n", n, m[n])
		}
		v := (m["v1"] + m["v2"] + m["v3"] + m["v4"]) / 4
		slip := m["delta"] - steering.Wheelbase*m["yaw"]/v
		fmt.Printf("\nderived: v̄ = %.3f, slip indicator = %.4f (oversteer ⇔ ≤ −0.05)\n", v, slip)
	}
}
