// Diagnosis demonstrates the LSAT use-case of the paper (Sec. 4): "the use
// of LSAT is desirable for applications such as consistency-based
// diagnosis, where more than one Boolean solution may be required to
// reason about the failure state of systems."
//
// A three-sensor voltage monitor is modelled: each sensor i reads the same
// physical voltage u unless its health bit ok_i is false. The readings are
// inconsistent with all three sensors healthy, so AllModels enumerates the
// *diagnoses*: the minimal assumptions about broken sensors that explain
// the observations.
package main

import (
	"fmt"
	"log"

	"absolver"
)

func main() {
	p := absolver.NewProblem()

	// Health bits: var 1..3 ⇔ sensor i works correctly, i.e. reads u.
	mustBind := func(v int, src string) {
		a, err := absolver.ParseAtom(src, absolver.Real)
		if err != nil {
			log.Fatal(err)
		}
		p.Bind(v, a)
	}
	// Observed readings: 5.0 V, 5.1 V, 7.3 V. A healthy sensor is within
	// ±0.2 V of the true voltage (the tolerance is part of the model).
	// okHi/okLo pairs realise |reading − u| ≤ 0.2 per sensor.
	mustBind(0, "5.0 - u <= 0.2") // 1: sensor 1 upper
	mustBind(1, "u - 5.0 <= 0.2") // 2: sensor 1 lower
	mustBind(2, "5.1 - u <= 0.2") // 3: sensor 2 upper
	mustBind(3, "u - 5.1 <= 0.2") // 4: sensor 2 lower
	mustBind(4, "7.3 - u <= 0.2") // 5: sensor 3 upper
	mustBind(5, "u - 7.3 <= 0.2") // 6: sensor 3 lower

	// ok_i (vars 7..9) ⇔ both tolerance atoms of sensor i hold.
	ok := []int{7, 8, 9}
	atoms := [][2]int{{1, 2}, {3, 4}, {5, 6}}
	for i, o := range ok {
		p.AddClause(-o, atoms[i][0])
		p.AddClause(-o, atoms[i][1])
		p.AddClause(o, -atoms[i][0], -atoms[i][1])
	}
	// At most one sensor broken is the preferred diagnosis class: require
	// at least two healthy sensors (2-out-of-3 voting).
	p.AddClause(7, 8)
	p.AddClause(7, 9)
	p.AddClause(8, 9)
	p.SetBounds("u", 0, 24)

	fmt.Println("Sensor readings: 5.0 V, 5.1 V, 7.3 V (tolerance ±0.2 V)")
	fmt.Println("Enumerating consistent diagnoses (projected on health bits):")

	n, status, err := absolver.AllModels(p, absolver.Config{}, ok, 0, func(m absolver.Model) error {
		healthy := []string{}
		broken := []string{}
		for i, o := range ok {
			if m.Bool[o-1] {
				healthy = append(healthy, fmt.Sprintf("S%d", i+1))
			} else {
				broken = append(broken, fmt.Sprintf("S%d", i+1))
			}
		}
		fmt.Printf("  diagnosis: broken=%v healthy=%v, consistent voltage u=%.2f V\n",
			broken, healthy, m.Real["u"])
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d diagnosis/es; enumeration ended with status %v\n", n, status)
	fmt.Println("(expected: exactly one — sensor 3 broken, u ≈ 5.0-5.1 V)")
}
