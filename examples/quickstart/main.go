// Quickstart reproduces the paper's running example end-to-end: the
// MATLAB/Simulink model of Fig. 1 is converted through the Fig. 3
// tool-chain (block diagram → Lustre → AB problem), printed in the
// extended DIMACS input language of Fig. 2, and solved.
package main

import (
	"fmt"
	"log"

	"absolver"
	"absolver/internal/simulink"
)

func main() {
	// 1. The Fig. 1 block diagram: inputs a, x, y (real) and i, j (int),
	//    five comparisons, and the AND/OR/NOT logic driving Out1.
	model := simulink.Fig1()
	fmt.Printf("Fig. 1 model: %d blocks, %d lines\n", len(model.Blocks), len(model.Lines))

	// 2. Convert via the Lustre intermediate representation (Fig. 3).
	problem, err := absolver.ConvertSimulink(model)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Attach variable ranges (the analysis context).
	for _, v := range []string{"a", "x", "i", "j"} {
		problem.SetBounds(v, -10, 10)
	}
	problem.SetBounds("y", -10, 3.9) // keep 4−y away from zero

	// 4. Print the problem in the extended DIMACS format (Fig. 2): the
	//    Boolean skeleton on top, the arithmetic constraints in "c def"
	//    comment lines, still readable by any plain SAT solver.
	text, err := absolver.FormatProblem(problem)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nExtended DIMACS (Fig. 2 format):")
	fmt.Println(text)

	// 5. Solve: the Boolean solver proposes assignments, the linear solver
	//    checks the integer constraints, and the nonlinear solver handles
	//    a·x + 3.5/(4−y) + 2y ≥ 7.1.
	res, err := absolver.Solve(problem)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("verdict:", res.Status)
	if res.Status == absolver.StatusSat {
		m := res.Model.Real
		fmt.Printf("witness: a=%.3f x=%.3f y=%.3f i=%g j=%g\n",
			m["a"], m["x"], m["y"], m["i"], m["j"])
		nl := m["a"]*m["x"] + 3.5/(4-m["y"]) + 2*m["y"]
		fmt.Printf("check: a·x + 3.5/(4−y) + 2y = %.4f (≥ 7.1)\n", nl)
	}
	fmt.Printf("engine: %d iterations, %d linear checks, %d nonlinear checks\n",
		res.Stats.Iterations, res.Stats.LinearChecks, res.Stats.NonlinearChecks)
}
